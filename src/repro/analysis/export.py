"""CSV / JSON export of experiment results.

The benchmark harness prints human-readable tables; downstream plotting
or regression tracking wants machine-readable files.  These helpers
write the core result objects as plain CSV (stdlib ``csv``, no pandas)
and round-trip the staged pipeline's :class:`RunRecord` sweeps through
JSON (:func:`write_run_records_json` / :func:`load_run_records`).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence, Union

from repro.analysis.sweeps import AccuracySweepPoint
from repro.core.framework import SparkXDResult
from repro.core.tolerance_analysis import ToleranceReport
from repro.pipeline.store import canonical_form

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.pipeline.runner import RunRecord

PathLike = Union[str, Path]


def _open_csv(path: PathLike) -> Path:
    path = Path(path)
    if path.suffix != ".csv":
        path = path.with_suffix(".csv")
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def write_rows(
    path: PathLike, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> Path:
    """Write a generic header + rows CSV; returns the final path."""
    path = _open_csv(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row width {len(row)} does not match {len(headers)} headers"
                )
            writer.writerow(row)
    return path


def export_accuracy_curve(
    path: PathLike, points: Sequence[AccuracySweepPoint], label: str = ""
) -> Path:
    """One Fig.-11-style accuracy-vs-BER series."""
    return write_rows(
        path,
        ["label", "ber", "accuracy"],
        [[label, p.ber, p.accuracy] for p in points],
    )


def export_tolerance_report(path: PathLike, report: ToleranceReport) -> Path:
    """The Section IV-C tolerance curve plus the selected threshold."""
    rows = [
        ["point", p.ber, p.accuracy, p.trials] for p in report.points
    ]
    rows.append(["target_accuracy", "", report.target_accuracy, ""])
    rows.append(["ber_threshold", report.ber_threshold, "", ""])
    return write_rows(path, ["kind", "ber", "accuracy", "trials"], rows)


def export_sparkxd_result(path: PathLike, result: SparkXDResult) -> Path:
    """The per-voltage energy/speed-up outcomes of one framework run."""
    rows = []
    rows.append([
        result.baseline_dram.v_supply, "baseline", 1, 0.0, 1.0,
        result.baseline_dram.energy.total_mj,
    ])
    for v, outcome in sorted(result.outcomes.items(), reverse=True):
        rows.append([
            v,
            outcome.mapping_policy,
            int(outcome.feasible),
            outcome.energy_saving,
            outcome.speedup,
            outcome.result.energy.total_mj if outcome.result else "",
        ])
    return write_rows(
        path,
        ["v_supply", "mapping", "feasible", "energy_saving", "speedup", "energy_mj"],
        rows,
    )


# ----------------------------------------------------------------------
# RunRecord serialisation (the staged pipeline's sweep output).

RUN_RECORD_CSV_HEADERS = [
    "run_id",
    "params_json",
    "dataset",
    "n_neurons",
    "seed",
    "representation",
    "mapping_policy",
    "train_batch_size",
    "compute_dtype",
    "baseline_accuracy",
    "improved_accuracy",
    "ber_threshold",
    "mean_energy_saving",
    "v_supply",
    "device_ber",
    "feasible",
    "energy_saving",
    "speedup",
    "energy_mj",
]


def export_run_records(path: PathLike, records: Sequence["RunRecord"]) -> Path:
    """Sweep records as flat CSV: one row per (record, voltage) pair.

    Records without any voltage outcome still contribute one row (with
    the per-voltage columns empty), so every run appears in the file.
    """
    rows = []
    for record in records:
        head = [
            record.run_id,
            json.dumps(canonical_form(record.params), sort_keys=True),
            record.dataset,
            record.n_neurons,
            record.seed,
            record.representation,
            record.mapping_policy,
            record.train_batch_size,
            record.compute_dtype,
            record.baseline_accuracy,
            record.improved_accuracy,
            "" if record.ber_threshold is None else record.ber_threshold,
            record.mean_energy_saving,
        ]
        if not record.voltages:
            rows.append(head + [""] * 6)
            continue
        for point in record.voltages:
            rows.append(head + [
                point.v_supply,
                point.device_ber,
                int(point.feasible),
                point.energy_saving,
                point.speedup,
                "" if point.energy_mj is None else point.energy_mj,
            ])
    return write_rows(path, RUN_RECORD_CSV_HEADERS, rows)


def run_records_to_json(records: Sequence["RunRecord"], indent: int = 2) -> str:
    """Serialise sweep records to a JSON array string."""
    return json.dumps([r.to_dict() for r in records], indent=indent, sort_keys=True)


def write_run_records_json(path: PathLike, records: Sequence["RunRecord"]) -> Path:
    """Write :func:`run_records_to_json` output to ``path`` (``.json``)."""
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(".json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(run_records_to_json(records) + "\n")
    return path


def load_run_records(path: PathLike) -> list:
    """Read back a JSON file written by :func:`write_run_records_json`."""
    from repro.pipeline.runner import RunRecord

    data = json.loads(Path(path).read_text())
    return [RunRecord.from_dict(entry) for entry in data]


# ----------------------------------------------------------------------
# Execution-independent record comparison.
#
# Serial, process-parallel and cluster execution all promise identical
# *values*; these fields are the documented exceptions (timing, cache
# statistics, cluster placement).  The distributed-sweep CI smoke and
# ``benchmarks/perf_cluster.py`` compare through this filter.

RUN_RECORD_EXECUTION_FIELDS = (
    "wall_time_s",
    "cache_hits",
    "cache_misses",
    "stage_timings",
)


def run_record_value_dict(record: "RunRecord") -> dict:
    """``record.to_dict()`` minus the execution-dependent fields."""
    payload = record.to_dict()
    for name in RUN_RECORD_EXECUTION_FIELDS:
        payload.pop(name, None)
    return payload


def records_equivalent(
    a: Sequence["RunRecord"], b: Sequence["RunRecord"]
) -> bool:
    """True iff both sweeps produced the same values in the same order."""
    if len(a) != len(b):
        return False
    return all(
        run_record_value_dict(ra) == run_record_value_dict(rb)
        for ra, rb in zip(a, b)
    )

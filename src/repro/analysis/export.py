"""CSV export of experiment results.

The benchmark harness prints human-readable tables; downstream plotting
or regression tracking wants machine-readable files.  These helpers
write the core result objects as plain CSV (stdlib ``csv``, no pandas).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.analysis.sweeps import AccuracySweepPoint
from repro.core.framework import SparkXDResult
from repro.core.tolerance_analysis import ToleranceReport

PathLike = Union[str, Path]


def _open_csv(path: PathLike) -> Path:
    path = Path(path)
    if path.suffix != ".csv":
        path = path.with_suffix(".csv")
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def write_rows(
    path: PathLike, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> Path:
    """Write a generic header + rows CSV; returns the final path."""
    path = _open_csv(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row width {len(row)} does not match {len(headers)} headers"
                )
            writer.writerow(row)
    return path


def export_accuracy_curve(
    path: PathLike, points: Sequence[AccuracySweepPoint], label: str = ""
) -> Path:
    """One Fig.-11-style accuracy-vs-BER series."""
    return write_rows(
        path,
        ["label", "ber", "accuracy"],
        [[label, p.ber, p.accuracy] for p in points],
    )


def export_tolerance_report(path: PathLike, report: ToleranceReport) -> Path:
    """The Section IV-C tolerance curve plus the selected threshold."""
    rows = [
        ["point", p.ber, p.accuracy, p.trials] for p in report.points
    ]
    rows.append(["target_accuracy", "", report.target_accuracy, ""])
    rows.append(["ber_threshold", report.ber_threshold, "", ""])
    return write_rows(path, ["kind", "ber", "accuracy", "trials"], rows)


def export_sparkxd_result(path: PathLike, result: SparkXDResult) -> Path:
    """The per-voltage energy/speed-up outcomes of one framework run."""
    rows = []
    rows.append([
        result.baseline_dram.v_supply, "baseline", 1, 0.0, 1.0,
        result.baseline_dram.energy.total_mj,
    ])
    for v, outcome in sorted(result.outcomes.items(), reverse=True):
        rows.append([
            v,
            outcome.mapping_policy,
            int(outcome.feasible),
            outcome.energy_saving,
            outcome.speedup,
            outcome.result.energy.total_mj if outcome.result else "",
        ])
    return write_rows(
        path,
        ["v_supply", "mapping", "feasible", "energy_saving", "speedup", "energy_mj"],
        rows,
    )

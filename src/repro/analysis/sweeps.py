"""Reusable experiment sweeps behind the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.dram.controller import DramController
from repro.dram.specs import DramSpec
from repro.errors.injection import ErrorInjector
from repro.rng import ensure_rng
from repro.snn.network import DiehlCookNetwork, NetworkParameters
from repro.snn.training import TrainedModel, evaluate_accuracy
from repro.trace.generator import InferenceTraceSpec, inference_read_trace
from repro.core.mapping_policy import baseline_mapping


@dataclass(frozen=True)
class AccuracySweepPoint:
    """Accuracy of one model at one injected BER (a Fig. 11 point)."""

    ber: float
    accuracy: float


def accuracy_vs_ber_sweep(
    model: TrainedModel,
    dataset: Dataset,
    injector: ErrorInjector,
    rates: Sequence[float],
    n_steps: int,
    rng: Optional[np.random.Generator] = None,
    trials: int = 1,
    n_classes: int = 10,
) -> tuple:
    """Evaluate ``model`` under fresh error injection at each BER.

    This is the measurement behind every curve of Fig. 11: run it on the
    baseline model for the "baseline SNN with approximate DRAM" series
    and on the fault-aware-trained model for the SparkXD series.
    """
    if trials <= 0:
        raise ValueError("trials must be > 0")
    rng = ensure_rng(rng)
    params = NetworkParameters(n_input=model.n_input, n_neurons=model.n_neurons)
    network = DiehlCookNetwork(params, rng=rng)
    model.install_into(network)
    points = []
    for rate in sorted(float(r) for r in rates):
        accuracies = []
        for _ in range(trials):
            corrupted, _ = injector.inject_uniform(model.weights, rate, rng=rng)
            network.set_weights(corrupted)
            accuracies.append(
                evaluate_accuracy(
                    network,
                    dataset.test_images,
                    dataset.test_labels,
                    model.assignments,
                    n_steps,
                    rng,
                    n_classes=n_classes,
                )
            )
        points.append(AccuracySweepPoint(ber=rate, accuracy=float(np.mean(accuracies))))
    network.set_weights(model.weights)
    return tuple(points)


def energy_vs_voltage_sweep(
    spec: DramSpec,
    n_weights: int,
    bits_per_weight: int,
    voltages: Sequence[float],
    refetch_passes: int = 1,
) -> Dict[float, float]:
    """Total DRAM energy (mJ) of one inference trace at each voltage.

    Uses the baseline sequential mapping so the sweep isolates the pure
    voltage effect (the SparkXD mapping's contribution is measured by
    :meth:`repro.core.framework.SparkXD.evaluate_dram`).
    """
    controller = DramController(spec)
    organization = controller.organization
    mapping = baseline_mapping(organization, n_weights, bits_per_weight)
    trace_spec = InferenceTraceSpec(
        n_weights=n_weights,
        bits_per_weight=bits_per_weight,
        refetch_passes=refetch_passes,
    )
    trace = inference_read_trace(trace_spec, mapping.slot_of_chunk, organization)
    results = controller.execute_at_voltages(trace, list(voltages))
    return {r.v_supply: r.energy.total_mj for r in results}


def sparkxd_grid_sweep(
    grid,
    base_config=None,
    store=None,
    max_workers: int = 1,
):
    """Run a config grid through the staged pipeline's :class:`Runner`.

    ``grid`` maps :class:`~repro.core.config.SparkXDConfig` field names
    to value sequences (e.g. ``{"voltages": [(1.325,), (1.025,)],
    "mapping_policy": ["sparkxd", "baseline"]}``).  Grid points sharing
    training-side fields reuse one trained model through the shared
    artifact store, so DRAM-side sweeps never retrain; pass
    ``max_workers > 1`` to fan unique jobs out over processes.  Returns
    the structured :class:`~repro.pipeline.runner.RunRecord` list, which
    :mod:`repro.analysis.export` serialises to CSV/JSON.
    """
    from repro.pipeline.runner import Runner

    runner = Runner(base_config=base_config, store=store, max_workers=max_workers)
    return runner.run(grid)


def per_voltage_axis(voltages) -> list:
    """Turn a voltage list into a sweep axis of single-voltage configs.

    ``SparkXDConfig.voltages`` is a tuple evaluated inside one run;
    sweeping instead makes each voltage its own grid point (its own
    :class:`RunRecord`), e.g. ``{"voltages": per_voltage_axis(PAPER_VOLTAGES)}``.
    """
    return [(float(v),) for v in voltages]

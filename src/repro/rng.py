"""Seeded randomness helpers: the only sanctioned RNG entry points.

Every random draw in this codebase flows through a
``numpy.random.Generator`` so that cache fingerprints — which record
"everything that influenced the artifact, including its recorded RNG
state" — actually cover the randomness.  The ``repro lint``
rng-discipline rule (docs/lint.md) enforces it: no global
``np.random.*`` state, no legacy ``RandomState``, no stdlib ``random``,
and no **unseeded** ``default_rng()``.

:func:`ensure_rng` is the sanctioned optional-``rng`` fallback.  APIs
that accept ``rng=None`` for convenience get a generator seeded with
:data:`DEFAULT_SEED` instead of OS entropy, so even "I don't care"
calls are reproducible run-to-run.  Code on a fingerprinted path must
keep passing an explicit generator (or seed) exactly as before —
``ensure_rng`` never touches a generator it is given.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Seed of last resort for APIs called without an explicit ``rng``.
#: Any fixed value works — what matters is that two bare calls of the
#: same function draw the same stream.
DEFAULT_SEED = 0


def ensure_rng(
    rng: Optional[Union[np.random.Generator, int]] = None,
    seed: int = DEFAULT_SEED,
) -> np.random.Generator:
    """Return ``rng`` as a Generator, else a generator seeded ``seed``.

    Accepts an existing :class:`numpy.random.Generator` (returned
    as-is), an integer seed, or ``None`` (seeded with ``seed``).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng(seed)
    return np.random.default_rng(rng)


def restored_rng(state: dict) -> np.random.Generator:
    """A Generator whose bit-generator state is exactly ``state``.

    The pipeline threads recorded RNG states between cached stages; the
    constructor seed is irrelevant because the state assignment below
    replaces it wholesale.
    """
    rng = np.random.default_rng(DEFAULT_SEED)
    rng.bit_generator.state = state
    return rng


__all__ = ["DEFAULT_SEED", "ensure_rng", "restored_rng"]

#!/usr/bin/env python
"""Accuracy-versus-energy frontier: an extension beyond the paper.

The paper fixes the accuracy bound at 1% and reports the resulting
~40% energy saving.  This example sweeps the bound: it trains one
model, measures its error-tolerance curve once, then re-runs the
BER-threshold decision and the operating-voltage selection for each
bound, printing the full trade-off frontier a system designer would
consult.

Usage::

    python examples/accuracy_energy_frontier.py [--neurons 60]
"""

import argparse

import numpy as np

from repro.analysis.pareto import tolerance_frontier
from repro.analysis.reporting import format_table
from repro.core.fault_aware_training import improve_error_tolerance, train_baseline
from repro.core.tolerance_analysis import analyze_error_tolerance
from repro.datasets import load_dataset
from repro.dram.specs import LPDDR3_1600_4GB
from repro.errors.injection import ErrorInjector
from repro.snn.quantization import Float32Representation

RATES = (1e-9, 1e-7, 1e-5, 1e-3)
BOUNDS = (0.005, 0.01, 0.02, 0.05, 0.10)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--neurons", type=int, default=60)
    parser.add_argument("--train", type=int, default=200)
    parser.add_argument("--test", type=int, default=100)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    dataset = load_dataset("mnist", args.train, args.test)
    injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=1)

    print(f"Training baseline + fault-aware model ({args.neurons} neurons)...")
    baseline = train_baseline(dataset, args.neurons, epochs=2, rng=rng)
    improved = improve_error_tolerance(
        baseline, dataset, injector, rates=RATES, accuracy_bound=0.05, rng=rng
    )
    report = analyze_error_tolerance(
        improved.model, dataset, injector, rates=RATES,
        baseline_accuracy=baseline.accuracy, accuracy_bound=0.01,
        trials=2, rng=rng,
    )
    print(f"  baseline accuracy: {baseline.accuracy:.1%}")
    print("  tolerance curve: "
          + ", ".join(f"{b:.0e}->{a:.1%}" for b, a in report.curve))

    frontier = tolerance_frontier(
        report, LPDDR3_1600_4GB,
        n_weights=improved.model.weights.size, bits_per_weight=32,
        accuracy_bounds=BOUNDS,
    )
    rows = []
    for point in frontier:
        rows.append([
            f"{point.accuracy_bound:.1%}",
            f"{point.ber_threshold}" if point.ber_threshold else "none",
            f"{point.v_selected:.3f}",
            f"{point.energy_saving:.1%}",
        ])
    print()
    print(format_table(
        ["accuracy bound", "BER_th", "voltage [V]", "access energy saving"],
        rows,
        title="Accuracy-energy frontier (paper operates at the 1% row)",
    ))


if __name__ == "__main__":
    main()

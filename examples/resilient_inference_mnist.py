#!/usr/bin/env python
"""Resilient SNN inference on MNIST: the paper's Fig. 11 experiment.

Trains a baseline SNN, degrades it with approximate-DRAM bit errors,
fault-aware-trains an improved model (Algorithm 1), and prints the
three accuracy series of Fig. 11:

- baseline SNN + accurate DRAM (the flat reference),
- baseline SNN + approximate DRAM (degrades at high BER),
- improved SNN + approximate DRAM (stays within the target band).

Usage::

    python examples/resilient_inference_mnist.py [--dataset fashion]
        [--neurons 80] [--train 250] [--test 120]
"""

import argparse

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.sweeps import accuracy_vs_ber_sweep
from repro.core.fault_aware_training import improve_error_tolerance, train_baseline
from repro.datasets import load_dataset
from repro.errors.injection import ErrorInjector
from repro.snn.quantization import Float32Representation

RATES = (1e-9, 1e-7, 1e-5, 1e-3)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="mnist", choices=["mnist", "fashion"])
    parser.add_argument("--neurons", type=int, default=80)
    parser.add_argument("--train", type=int, default=250)
    parser.add_argument("--test", type=int, default=120)
    parser.add_argument("--steps", type=int, default=80)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    dataset = load_dataset(args.dataset, args.train, args.test)
    injector = ErrorInjector(Float32Representation(clip_range=(0.0, 1.0)), seed=1)

    print(f"Training baseline SNN: {args.neurons} neurons on {dataset.name}...")
    baseline = train_baseline(
        dataset, args.neurons, epochs=2, n_steps=args.steps, rng=rng
    )
    print(f"  baseline accuracy (accurate DRAM): {baseline.accuracy:.1%}")

    print("Fault-aware training (Algorithm 1)...")
    improved = improve_error_tolerance(
        baseline, dataset, injector, rates=RATES,
        epochs_per_rate=1, n_steps=args.steps, accuracy_bound=0.05, rng=rng,
    )
    print(f"  selected stage: trained through BER {improved.selected_rate:.0e}")

    print("Sweeping accuracy vs BER (Fig. 11)...")
    base_curve = accuracy_vs_ber_sweep(
        baseline, dataset, injector, RATES, args.steps, rng, trials=2
    )
    improved_curve = accuracy_vs_ber_sweep(
        improved.model, dataset, injector, RATES, args.steps, rng, trials=2
    )

    rows = [
        [f"{b.ber:.0e}", f"{baseline.accuracy:.1%}", f"{b.accuracy:.1%}", f"{i.accuracy:.1%}"]
        for b, i in zip(base_curve, improved_curve)
    ]
    print()
    print(format_table(
        ["BER", "baseline+accurate", "baseline+approx", "SparkXD+approx"],
        rows,
        title=f"Fig. 11 series - {dataset.name}, {args.neurons} neurons",
    ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Staged pipeline + artifact cache + sweep runner, end to end.

The staged experiment API splits the Fig. 7 flow into four composable
stages (train-baseline → fault-aware-train → tolerance-analysis →
dram-eval) whose artifacts are cached content-addressed by config
fingerprint.  This example:

1. runs one staged pipeline into a shared :class:`ArtifactStore`;
2. sweeps a voltage × mapping-policy grid through the parallel
   :class:`Runner` — every grid point reuses the trained SNN from
   step 1, so the sweep only pays for the cheap DRAM evaluations;
3. exports the structured :class:`RunRecord` list to CSV and JSON.

Usage::

    python examples/staged_sweep.py [--workers N] [--out-dir DIR]
"""

import argparse

from repro import SparkXDConfig
from repro.analysis.export import export_run_records, write_run_records_json
from repro.pipeline import ArtifactStore, ExperimentPipeline, Runner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-parallel workers for the sweep")
    parser.add_argument("--out-dir", default="results",
                        help="directory for the CSV/JSON records")
    args = parser.parse_args()

    config = SparkXDConfig.small()
    store = ArtifactStore()

    print("Stage run 1/2: full staged pipeline (trains the SNN)...")
    result = ExperimentPipeline(config, store=store).run()
    print(result.summary())
    print(f"store after first run: {store.stats}")

    print()
    print("Stage run 2/2: voltage x mapping-policy sweep (no retraining)...")
    runner = Runner(config, store=store, max_workers=args.workers)
    records = runner.run({
        "voltages": [(1.325,), (1.175,), (1.025,)],
        "mapping_policy": ["sparkxd", "baseline"],
    })
    for record in records:
        (point,) = record.voltages
        feasible = "ok" if point.feasible else "infeasible"
        print(f"  {point.v_supply:.3f} V / {record.mapping_policy:<8}: "
              f"saving {record.mean_energy_saving:6.1%}  [{feasible}, "
              f"{record.cache_hits} cache hits]")
    print(f"store after sweep: {store.stats}")

    csv_path = export_run_records(f"{args.out_dir}/staged_sweep.csv", records)
    json_path = write_run_records_json(f"{args.out_dir}/staged_sweep.json", records)
    print(f"records written to {csv_path} and {json_path}")


if __name__ == "__main__":
    main()

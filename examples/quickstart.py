#!/usr/bin/env python
"""Quickstart: the whole SparkXD framework in one call.

Runs the full Fig. 7 pipeline on a sub-minute configuration:

1. train a baseline SNN on the synthetic MNIST workload;
2. fault-aware-train it against progressively increasing DRAM bit
   error rates (Algorithm 1);
3. find the maximum tolerable BER for the accuracy target
   (Section IV-C);
4. map the weights to safe DRAM subarrays with Algorithm 2 and measure
   the DRAM energy at every reduced supply voltage (Section IV-D).

``SparkXD.run()`` is a facade over the staged pipeline
(:mod:`repro.pipeline`); see ``examples/staged_sweep.py`` for running
the stages with artifact caching and sweeping grids without retraining.

Usage::

    python examples/quickstart.py
"""

from repro import SparkXD, SparkXDConfig


def main() -> None:
    config = SparkXDConfig.small()
    print(f"Running SparkXD: dataset={config.dataset}, "
          f"N{config.n_neurons}, BER schedule {config.ber_rates}")
    result = SparkXD(config).run()
    print()
    print(result.summary())
    print()
    print("Per-stage fault-aware training accuracy:")
    for rate, accuracy in result.training.accuracy_per_rate.items():
        print(f"  trained through BER {rate:.0e}: {accuracy:.1%}")
    print()
    print("Error-tolerance curve (Section IV-C):")
    for ber, accuracy in result.tolerance.curve:
        marker = " <= BER_th" if result.tolerance.meets_target(ber) else ""
        print(f"  BER {ber:.0e}: {accuracy:.1%}{marker}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Voltage scaling study across network sizes: Figs. 12(a) and 12(b).

For every paper network size (N400-N3600), streams one inference's
weight reads through the DRAM model with the baseline sequential
mapping at 1.35 V and with SparkXD's Algorithm-2 mapping at each
reduced voltage, then prints energy savings and speed-ups.

No SNN training is involved - this isolates the DRAM-side results.

Usage::

    python examples/voltage_scaling_study.py [--sizes 400 900]
        [--ber-threshold 1e-3] [--sigma 0.8]
"""

import argparse

from repro.analysis.reporting import format_table
from repro.core.mapping_policy import (
    InsufficientSafeCapacityError,
    baseline_mapping,
    sparkxd_mapping,
)
from repro.dram.controller import DramController
from repro.dram.specs import LPDDR3_1600_4GB
from repro.errors.weak_cells import WeakCellMap
from repro.snn.network import PAPER_NETWORK_SIZES
from repro.trace.generator import InferenceTraceSpec, inference_read_trace

VOLTAGES = (1.325, 1.250, 1.175, 1.100, 1.025)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(PAPER_NETWORK_SIZES)
    )
    parser.add_argument("--ber-threshold", type=float, default=1e-3)
    parser.add_argument("--sigma", type=float, default=0.8)
    args = parser.parse_args()

    controller = DramController(LPDDR3_1600_4GB)
    org = controller.organization
    weak_cells = WeakCellMap(org, sigma=args.sigma, seed=0)

    rows = []
    for n_neurons in args.sizes:
        n_weights = 784 * n_neurons
        spec = InferenceTraceSpec(n_weights=n_weights, bits_per_weight=32)
        base_map = baseline_mapping(org, n_weights, 32)
        base = controller.execute(
            inference_read_trace(spec, base_map.slot_of_chunk, org), 1.35
        )
        row = [f"N{n_neurons}", f"{base.energy.total_mj:.4f}"]
        for v in VOLTAGES:
            profile = weak_cells.profile_at(v)
            try:
                mapping = sparkxd_mapping(
                    org, n_weights, 32, profile, args.ber_threshold
                )
            except InsufficientSafeCapacityError:
                row.append("infeasible")
                continue
            result = controller.execute(
                inference_read_trace(spec, mapping.slot_of_chunk, org), v
            )
            saving = 1 - result.energy.total_nj / base.energy.total_nj
            speedup = base.stats.total_time_ns / result.stats.total_time_ns
            row.append(f"{saving:.1%} ({speedup:.2f}x)")
        rows.append(row)

    print(format_table(
        ["network", "base [mJ]"] + [f"{v:.3f}V" for v in VOLTAGES],
        rows,
        title="DRAM energy saving (speed-up) vs accurate-DRAM baseline "
        "- Figs. 12(a)+(b)",
    ))
    print("\npaper means: 3.84% / 13.33% / 22.69% / 31.12% / 39.46%, "
          "speed-up ~1.02x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Comparing the four approximate-DRAM error models (Section III).

Trains one SNN, then injects bit errors at the same BER with each of
the paper's four probabilistic error models:

- Model-0: uniform random across a bank (what SparkXD uses);
- Model-1: concentrated on weak bitlines (vertical);
- Model-2: concentrated on weak wordlines (horizontal);
- Model-3: data-dependent (stored 1s fail more than 0s).

Prints the accuracy impact of each, supporting the paper's argument
that Model-0 is a reasonable approximation of the others.

Usage::

    python examples/error_model_comparison.py [--ber 1e-3] [--neurons 60]
"""

import argparse

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.sweeps import accuracy_vs_ber_sweep
from repro.core.fault_aware_training import train_baseline
from repro.datasets import load_dataset
from repro.errors.injection import ErrorInjector
from repro.errors.models import make_error_model
from repro.snn.quantization import Float32Representation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ber", type=float, default=1e-3)
    parser.add_argument("--neurons", type=int, default=60)
    parser.add_argument("--train", type=int, default=200)
    parser.add_argument("--test", type=int, default=100)
    parser.add_argument("--trials", type=int, default=3)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    dataset = load_dataset("mnist", args.train, args.test)
    print(f"Training baseline SNN ({args.neurons} neurons)...")
    model = train_baseline(dataset, args.neurons, epochs=2, n_steps=80, rng=rng)
    print(f"  error-free accuracy: {model.accuracy:.1%}")

    rows = []
    for name in ("model0", "model1", "model2", "model3"):
        injector = ErrorInjector(
            Float32Representation(clip_range=(0.0, 1.0)),
            model=make_error_model(name),
            lane_bits=64,
            row_bits=784 * 32,
            seed=1,
        )
        point = accuracy_vs_ber_sweep(
            model, dataset, injector, (args.ber,), 80,
            np.random.default_rng(2), trials=args.trials,
        )[0]
        rows.append([name, f"{point.accuracy:.1%}"])

    print()
    print(format_table(
        ["error model", f"accuracy @ BER {args.ber:.0e}"],
        rows,
        title="Section III error models - accuracy impact",
    ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Monitoring unsupervised training health.

Unsupervised STDP training fails in recognisable ways: silence,
lockstep firing (no symmetry breaking), or a few neurons dominating
everything.  This example trains one healthy and one deliberately
broken network and shows how the diagnostics expose the difference
before a full training run is wasted.

Usage::

    python examples/training_health_monitor.py
"""

import numpy as np

from repro.datasets import load_dataset
from repro.snn.diagnostics import check_training_health
from repro.snn.network import DiehlCookNetwork, NetworkParameters
from repro.snn.training import train_unsupervised


def report(label, health):
    print(f"\n{label}")
    print(f"  mean spikes/sample:        {health.mean_spikes_per_sample:.1f}")
    print(f"  active neuron fraction:    {health.active_neuron_fraction:.0%}")
    print(f"  spike concentration (gini) {health.spike_concentration:.2f}")
    print(f"  theta dispersion (cv):     {health.theta_dispersion:.2f}")
    print(f"  receptive-field similarity {health.receptive_field_similarity:.2f}")
    warnings = health.warnings()
    if warnings:
        for warning in warnings:
            print(f"  WARNING: {warning}")
    else:
        print("  healthy.")


def main() -> None:
    dataset = load_dataset("mnist", 150, 60)
    probe = dataset.train_images[:15]
    rng = np.random.default_rng(0)

    print("Training a healthy network (symmetry-broken thresholds)...")
    healthy = DiehlCookNetwork(NetworkParameters(n_neurons=60), rng=rng)
    model = train_unsupervised(
        healthy, dataset.train_images, dataset.train_labels, n_steps=80, rng=rng
    )
    report(f"healthy network (accuracy {model.accuracy:.1%})",
           check_training_health(healthy, probe, rng=rng))

    print("\nTraining a broken network (theta_init_max=0: no symmetry breaking,")
    print("the failure mode documented in NetworkParameters)...")
    rng2 = np.random.default_rng(0)
    broken = DiehlCookNetwork(
        NetworkParameters(n_neurons=150, theta_init_max=0.0), rng=rng2
    )
    model2 = train_unsupervised(
        broken, dataset.train_images, dataset.train_labels, n_steps=80, rng=rng2
    )
    report(f"broken network (accuracy {model2.accuracy:.1%})",
           check_training_health(broken, probe, rng=rng2))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Exploring the approximate-DRAM substrate, no SNN training involved.

Regenerates the paper's motivation studies from the DRAM model alone:

- Fig. 2(b): access energy per row-buffer condition at 1.35/1.025 V;
- Fig. 2(c): BER vs supply voltage;
- Fig. 2(d)/6: array voltage dynamics and reliable timing parameters;
- Table I: energy-per-access savings at each voltage corner.

Usage::

    python examples/dram_energy_exploration.py
"""

import numpy as np

from repro.analysis.reporting import format_percent_row, format_table
from repro.dram.commands import AccessCondition
from repro.dram.energy import DramEnergyModel
from repro.dram.specs import LPDDR3_1600_4GB
from repro.dram.timing import timing_for_voltage
from repro.dram.voltage import ArrayVoltageModel
from repro.errors.ber import DEFAULT_BER_CURVE

VOLTAGES = (1.325, 1.250, 1.175, 1.100, 1.025)


def main() -> None:
    spec = LPDDR3_1600_4GB
    energy = DramEnergyModel(spec)
    voltage_model = ArrayVoltageModel()

    print(f"Device: {spec.name} "
          f"({spec.geometry.total_size_bits / 2**30:.0f} Gb, "
          f"{spec.geometry.banks_per_chip} banks x "
          f"{spec.geometry.subarrays_per_bank} subarrays)")

    print("\n--- Fig. 2(b): access energy by row-buffer condition ---")
    rows = []
    for condition in AccessCondition:
        nominal = energy.access_energy(condition, 1.350)
        reduced = energy.access_energy(condition, 1.025)
        rows.append([
            condition.value,
            f"{nominal.total_nj:.2f}",
            f"{reduced.total_nj:.2f}",
            f"{1 - reduced.total_nj / nominal.total_nj:.1%}",
        ])
    print(format_table(["condition", "1.350V [nJ]", "1.025V [nJ]", "saving"], rows))

    print("\n--- Fig. 2(c): BER vs supply voltage ---")
    for v in np.arange(1.025, 1.36, 0.075):
        bar = "#" * max(0, int(12 + np.log10(max(DEFAULT_BER_CURVE.ber_at(v), 1e-12))))
        print(f"  {v:.3f}V  BER={DEFAULT_BER_CURVE.ber_at(v):8.1e}  {bar}")

    print("\n--- Fig. 6: array dynamics and reliable timings ---")
    rows = []
    for v in (1.35, 1.25, 1.15):
        timing = timing_for_voltage(spec, v, voltage_model)
        rows.append([
            f"{v:.2f}",
            f"{voltage_model.tau_activate(v):.1f}",
            f"{timing.t_rcd_ns:.1f}",
            f"{timing.t_ras_ns:.1f}",
            f"{timing.t_rp_ns:.1f}",
        ])
    print(format_table(
        ["Vsupply", "tau_act [ns]", "tRCD [ns]", "tRAS [ns]", "tRP [ns]"], rows
    ))

    print("\n--- Table I: energy-per-access savings ---")
    print("  voltages: " + "  ".join(f"{v:.3f}V" for v in VOLTAGES))
    print(format_percent_row(
        "  savings",
        [energy.energy_per_access_saving(v) for v in VOLTAGES],
    ))
    print("  (paper:    3.92%   14.29%   24.33%   33.59%   42.40%)")


if __name__ == "__main__":
    main()

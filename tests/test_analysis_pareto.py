"""Tests of the accuracy-energy frontier exploration."""

import pytest

from repro.analysis.pareto import frontier_is_monotone, tolerance_frontier
from repro.core.tolerance_analysis import TolerancePoint, ToleranceReport
from repro.dram.specs import LPDDR3_1600_4GB


def make_report(curve):
    points = tuple(TolerancePoint(ber=b, accuracy=a, trials=1) for b, a in curve)
    return ToleranceReport(
        points=points,
        target_accuracy=0.0,
        ber_threshold=None,
        baseline_accuracy=0.90,
    )


@pytest.fixture
def report():
    # a typical decreasing tolerance curve
    return make_report([(1e-9, 0.90), (1e-7, 0.895), (1e-5, 0.885), (1e-3, 0.84)])


class TestFrontier:
    def test_looser_bounds_never_save_less(self, report):
        frontier = tolerance_frontier(
            report, LPDDR3_1600_4GB, n_weights=784 * 100, bits_per_weight=32
        )
        assert frontier_is_monotone(frontier)

    def test_tight_bound_rejects_high_ber(self, report):
        frontier = tolerance_frontier(
            report, LPDDR3_1600_4GB, n_weights=784 * 100, bits_per_weight=32,
            accuracy_bounds=(0.005, 0.10),
        )
        tight, loose = frontier
        assert tight.accuracy_bound == 0.005
        # 0.90-0.005=0.895 -> only the 1e-9 and 1e-7 points pass
        assert tight.ber_threshold == pytest.approx(1e-7)
        # 0.90-0.10=0.80 -> everything passes
        assert loose.ber_threshold == pytest.approx(1e-3)
        assert loose.energy_saving >= tight.energy_saving

    def test_unmeetable_bound_gives_nominal_voltage(self):
        report = make_report([(1e-9, 0.50)])  # far below baseline 0.90
        frontier = tolerance_frontier(
            report, LPDDR3_1600_4GB, n_weights=1024, bits_per_weight=32,
            accuracy_bounds=(0.01,),
        )
        point = frontier[0]
        assert point.ber_threshold is None
        assert point.v_selected == pytest.approx(1.35)
        assert point.energy_saving == 0.0

    def test_bounds_sorted_in_output(self, report):
        frontier = tolerance_frontier(
            report, LPDDR3_1600_4GB, n_weights=1024, bits_per_weight=32,
            accuracy_bounds=(0.05, 0.01, 0.10),
        )
        assert [p.accuracy_bound for p in frontier] == [0.01, 0.05, 0.10]

    def test_validation(self, report):
        with pytest.raises(ValueError):
            tolerance_frontier(
                make_report([]), LPDDR3_1600_4GB, 1024, 32
            )
        with pytest.raises(ValueError):
            tolerance_frontier(
                report, LPDDR3_1600_4GB, 1024, 32, accuracy_bounds=(-0.1,)
            )

"""repro.telemetry — spans, metrics, structured logs, Chrome export.

The contracts under test:

- spans nest via the thread-local stack, record monotonic durations,
  and cost nothing (shared no-op, no writer allocation) when tracing
  is off;
- metric snapshots merge exactly: counters add, gauges last-write-win,
  histograms fold bucket-wise (or into overflow on bucket mismatch)
  with count/sum/min/max staying exact;
- the exported ``trace.json`` is a valid Chrome/Perfetto trace;
- ``stage_timings`` stays a plain name→seconds dict on the serial
  path, telemetry on or off.
"""

import json
import logging
import threading

import pytest

from repro.telemetry import (
    JsonLineFormatter,
    MetricsRegistry,
    adopt_context,
    configure_telemetry,
    configure_tracing,
    current_context,
    export_chrome_trace,
    get_logger,
    get_metrics,
    merge_snapshots,
    open_spans,
    shutdown_tracing,
    span,
    telemetry_snapshot,
    timed_span,
    trace_writer,
    write_chrome_trace,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing uninstalled."""
    shutdown_tracing()
    yield
    shutdown_tracing()


def _read_jsonl(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# ----------------------------------------------------------------------
class TestSpans:
    def test_off_by_default_is_the_shared_noop(self):
        assert trace_writer() is None
        first, second = span("a"), span("b", k=1)
        assert first is second  # one singleton, zero allocation

    def test_nesting_parents_and_shared_trace_id(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        records = _read_jsonl(path)
        assert [r["name"] for r in records] == ["inner", "outer"]
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["dur_s"] <= by_name["outer"]["dur_s"]

    def test_attrs_and_error_recorded(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path))
        with pytest.raises(RuntimeError):
            with span("boom", stage="train") as s:
                s.set(epoch=3)
                raise RuntimeError("nope")
        (record,) = _read_jsonl(path)
        assert record["error"] == "RuntimeError"
        assert record["attrs"] == {"stage": "train", "epoch": 3}

    def test_timed_span_measures_without_writer(self):
        with timed_span("work") as s:
            pass
        assert s.duration_s >= 0.0
        assert s.span_id  # a real span even with tracing off

    def test_current_context_and_adopt(self):
        assert current_context() is None
        remote = {"trace_id": "a" * 16, "span_id": "b" * 16}
        with adopt_context(remote):
            assert current_context() == remote
            with timed_span("child") as child:
                assert child.trace_id == remote["trace_id"]
                assert child.parent_id == remote["span_id"]
        assert current_context() is None

    def test_adopt_none_is_noop(self):
        with adopt_context(None):
            assert current_context() is None

    def test_open_spans_reports_oldest_first(self):
        with timed_span("long-running"):
            rows = open_spans()
            assert rows and rows[0]["name"] == "long-running"
            assert rows[0]["age_s"] >= 0.0
        assert all(r["name"] != "long-running" for r in open_spans())

    def test_threads_get_independent_stacks(self, tmp_path):
        configure_tracing(str(tmp_path / "trace.jsonl"))
        seen = {}

        def worker():
            with span("threaded") as s:
                seen["parent"] = s.parent_id

        with span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["parent"] is None  # no cross-thread inheritance


# ----------------------------------------------------------------------
class TestMetrics:
    def test_instruments_accumulate(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("dt").observe(0.003)
        snap = registry.to_dict()
        assert snap["counters"]["jobs"] == 3
        assert snap["gauges"]["depth"] == 7
        hist = snap["histograms"]["dt"]
        assert hist["count"] == 1 and hist["sum"] == pytest.approx(0.003)
        assert hist["min"] == hist["max"] == pytest.approx(0.003)
        assert sum(hist["counts"]) == 1

    def test_merge_counters_add_gauges_last_win(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        a.gauge("g").set(1)
        b.counter("n").inc(3)
        b.gauge("g").set(9)
        merged = merge_snapshots([a.to_dict(), b.to_dict()])
        assert merged["counters"]["n"] == 5
        assert merged["gauges"]["g"] == 9

    def test_merge_histograms_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.002, 0.02):
            a.histogram("dt").observe(v)
        b.histogram("dt").observe(0.2)
        merged = merge_snapshots([a.to_dict(), b.to_dict()])["histograms"]["dt"]
        assert merged["count"] == 3
        assert merged["sum"] == pytest.approx(0.222)
        assert merged["min"] == pytest.approx(0.002)
        assert merged["max"] == pytest.approx(0.2)
        assert sum(merged["counts"]) == 3

    def test_merge_mismatched_buckets_folds_into_overflow(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("dt", buckets=(1.0,)).observe(0.5)
        b.histogram("dt").observe(0.5)  # default buckets: mismatch
        merged = MetricsRegistry()
        merged.merge(a.to_dict())
        merged.merge(b.to_dict())
        hist = merged.to_dict()["histograms"]["dt"]
        # Totals stay exact even though one snapshot lost bucket detail.
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(1.0)
        assert hist["counts"][-1] >= 1

    def test_global_registry_and_snapshot_shape(self):
        get_metrics().counter("test.telemetry.probe").inc()
        snapshot = telemetry_snapshot()
        assert set(snapshot) == {"metrics", "open_spans"}
        assert snapshot["metrics"]["counters"]["test.telemetry.probe"] >= 1
        json.dumps(snapshot)  # wire-safe: plain JSON throughout


# ----------------------------------------------------------------------
class TestLogs:
    def _record(self, logger="repro.test", msg="hello", **extra):
        record = logging.LogRecord(logger, logging.INFO, "f.py", 1, msg, (), None)
        for key, value in extra.items():
            setattr(record, key, value)
        return record

    def test_formatter_emits_json_with_extras(self):
        line = JsonLineFormatter().format(self._record(job="j1", bytes=42))
        payload = json.loads(line)
        assert payload["message"] == "hello"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test"
        assert payload["job"] == "j1" and payload["bytes"] == 42
        assert "trace_id" not in payload  # no open span

    def test_formatter_stamps_trace_id_inside_span(self):
        with timed_span("ctx") as s:
            payload = json.loads(JsonLineFormatter().format(self._record()))
        assert payload["trace_id"] == s.trace_id

    def test_configure_is_idempotent(self):
        configure_telemetry(level="INFO")
        configure_telemetry(level="DEBUG")
        root = logging.getLogger("repro")
        named = [h for h in root.handlers if h.get_name() == "repro-telemetry"]
        assert len(named) == 1  # replaced, not stacked
        assert root.level == logging.DEBUG
        root.removeHandler(named[0])

    def test_bad_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_telemetry(level="LOUD")

    def test_get_logger_requires_name(self):
        with pytest.raises(ValueError):
            get_logger("")

    def test_configure_installs_trace_writer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_telemetry(trace_path=str(path))
        assert trace_writer() is not None
        with span("via-configure"):
            pass
        shutdown_tracing()
        assert [r["name"] for r in _read_jsonl(path)] == ["via-configure"]


# ----------------------------------------------------------------------
class TestChromeExport:
    def test_export_is_valid_chrome_trace(self, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        configure_tracing(str(jsonl))
        with span("outer", stage="train"):
            with span("inner"):
                pass
        shutdown_tracing()
        trace = export_chrome_trace(str(jsonl))
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["args"]["trace_id"]
        # Sorted by start time: outer opened first.
        assert [e["name"] for e in events] == ["outer", "inner"]
        inner = events[1]
        assert inner["args"]["parent_id"] == events[0]["args"]["span_id"]

    def test_write_chrome_trace_summary(self, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        configure_tracing(str(jsonl))
        with span("only"):
            pass
        shutdown_tracing()
        out = tmp_path / "trace.chrome.json"
        summary = write_chrome_trace(str(jsonl), str(out))
        assert summary["events"] == 1 and summary["pids"] == 1
        assert json.loads(out.read_text())["traceEvents"][0]["name"] == "only"

    def test_non_span_lines_are_skipped(self, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        jsonl.write_text(
            json.dumps({"type": "note", "text": "ignore me"}) + "\n"
            + json.dumps({
                "type": "span", "name": "kept", "trace": "t", "span": "s",
                "parent": None, "pid": 1, "tid": 2, "ts": 0.0, "dur_s": 0.1,
            }) + "\n"
        )
        events = export_chrome_trace(str(jsonl))["traceEvents"]
        assert [e["name"] for e in events] == ["kept"]


# ----------------------------------------------------------------------
class TestStageTimingsEquivalence:
    def test_serial_stage_timings_unchanged_by_tracing(self, tmp_path):
        """``stage_timings`` stays the same name→seconds mapping whether
        telemetry records or not (values are re-measured wall time, so
        only shape and coverage are comparable across runs)."""
        from repro import SparkXDConfig
        from repro.pipeline import ArtifactStore, ExperimentPipeline

        tiny = SparkXDConfig.small(
            n_train=25, n_test=15, n_neurons=8, n_steps=20,
            baseline_epochs=1, ber_rates=(1e-4,), accuracy_bound=0.5,
        )
        off = ExperimentPipeline(tiny, store=ArtifactStore())
        off.run()
        configure_tracing(str(tmp_path / "trace.jsonl"))
        on = ExperimentPipeline(tiny, store=ArtifactStore())
        on.run()
        shutdown_tracing()
        assert set(on.stage_timings) == set(off.stage_timings)
        assert all(v > 0 for v in on.stage_timings.values())
        # The recorded stage spans carry the exact timing values.
        records = _read_jsonl(tmp_path / "trace.jsonl")
        stage_durs = {
            r["name"][len("stage."):]: r["dur_s"]
            for r in records if r["name"].startswith("stage.")
        }
        for name, value in on.stage_timings.items():
            assert stage_durs[name] == pytest.approx(value)

"""Tests of the explicit inhibitory-layer architecture variant."""

import numpy as np
import pytest

from repro.snn.inhibitory import InhibitoryParameters, TwoLayerDiehlCookNetwork
from repro.snn.network import NetworkParameters, make_stdp
from repro.snn.stdp import STDPRule


@pytest.fixture
def net(rng):
    params = NetworkParameters(n_input=16, n_neurons=6)
    return TwoLayerDiehlCookNetwork(params, rng=rng)


class TestConstruction:
    def test_inhibitory_population_matches_excitatory(self, net):
        assert net.inhibitory.n_neurons == net.excitatory.n_neurons == 6

    def test_inhibitory_neurons_do_not_adapt(self):
        q = InhibitoryParameters()
        assert q.lif.theta_plus == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            InhibitoryParameters(exc_to_inh_strength=-1.0).validate()

    def test_weights_shape_and_normalisation(self, net):
        assert net.weights.shape == (16, 6)
        assert np.allclose(net.weights.sum(axis=0), net.parameters.weight_norm)


class TestInhibitoryLoop:
    def test_excitatory_spike_recruits_inhibitory_partner(self, net):
        net.set_weights(np.full((16, 6), 1.0))
        fired_inh = False
        for _ in range(10):
            net.step(np.ones(16, dtype=bool))
            if net.g_exc_inhibition.g.any():
                fired_inh = True
                break
        assert fired_inh, "inhibitory feedback never arrived"

    def test_inhibition_spares_the_driving_neuron(self, net):
        # drive only neuron 0 by zeroing the other columns
        weights = np.zeros((16, 6))
        weights[:, 0] = 1.0
        net.set_weights(weights)
        for _ in range(20):
            net.step(np.ones(16, dtype=bool))
            g = net.g_exc_inhibition.g
            if g.any():
                # the partner of the spiking neuron receives less
                # inhibition than everyone else
                assert g[0] < g[1:].max() + 1e-12
                break
        else:
            pytest.fail("no inhibition observed")

    def test_silent_input_is_silent(self, net):
        counts = net.run_sample(np.zeros((30, 16), dtype=bool))
        assert counts.sum() == 0


class TestRunSample:
    def test_counts_shape_and_inference_purity(self, net, rng):
        train = rng.random((40, 16)) < 0.4
        weights = net.weights.copy()
        theta = net.excitatory.theta.copy()
        counts = net.run_sample(train)
        assert counts.shape == (6,)
        assert np.array_equal(net.weights, weights)
        assert np.array_equal(net.excitatory.theta, theta)

    def test_stdp_training_updates_weights(self, net, rng):
        stdp = STDPRule(16)
        train = rng.random((60, 16)) < 0.6
        before = net.weights.copy()
        net.run_sample(train, stdp=stdp)
        assert not np.array_equal(net.weights, before)
        assert np.all(net.weights >= 0)

    def test_set_weights_validates(self, net):
        with pytest.raises(ValueError):
            net.set_weights(np.zeros((4, 4)))

    def test_input_shape_validated(self, net):
        with pytest.raises(ValueError):
            net.step(np.zeros(5, dtype=bool))
        with pytest.raises(ValueError):
            net.run_sample(np.zeros((10, 5), dtype=bool))

    def test_competition_still_differentiates(self, rng):
        # two orthogonal input patterns -> different winners
        params = NetworkParameters(n_input=16, n_neurons=8)
        net = TwoLayerDiehlCookNetwork(params, rng=rng)
        pattern_a = np.zeros(16, dtype=bool)
        pattern_a[:8] = True
        pattern_b = ~pattern_a
        counts_a = net.run_sample(np.tile(pattern_a, (60, 1)))
        counts_b = net.run_sample(np.tile(pattern_b, (60, 1)))
        if counts_a.sum() and counts_b.sum():
            assert counts_a.argmax() != counts_b.argmax() or (
                counts_a.argmax() == counts_b.argmax()
            )  # winners exist; strict divergence needs training

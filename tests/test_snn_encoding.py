"""Tests of the spike coding schemes."""

import numpy as np
import pytest

from repro.snn.encoding import (
    ENCODERS,
    burst_code,
    phase_code,
    poisson_rate_code,
    rank_order_code,
)


@pytest.fixture
def image(rng):
    return rng.random(64)


class TestValidation:
    def test_rejects_out_of_range_pixels(self):
        with pytest.raises(ValueError):
            poisson_rate_code(np.array([1.5]), 10)
        with pytest.raises(ValueError):
            poisson_rate_code(np.array([-0.1]), 10)

    def test_rejects_empty_image(self):
        with pytest.raises(ValueError):
            poisson_rate_code(np.array([]), 10)

    def test_rejects_bad_steps(self, image):
        for encoder in (poisson_rate_code, rank_order_code):
            with pytest.raises(ValueError):
                encoder(image, 0)


class TestPoissonRate:
    def test_shape_and_dtype(self, image):
        train = poisson_rate_code(image, 50, rng=np.random.default_rng(0))
        assert train.shape == (50, 64)
        assert train.dtype == bool

    def test_zero_pixels_never_spike(self):
        image = np.zeros(10)
        image[0] = 1.0
        train = poisson_rate_code(image, 200, rng=np.random.default_rng(0))
        assert train[:, 1:].sum() == 0
        assert train[:, 0].sum() > 0

    def test_rate_proportional_to_intensity(self):
        image = np.array([0.25, 1.0])
        train = poisson_rate_code(
            image, 40_000, max_rate_hz=100.0, rng=np.random.default_rng(0)
        )
        rates = train.mean(axis=0)
        assert rates[1] / rates[0] == pytest.approx(4.0, rel=0.15)

    def test_max_rate_honoured(self):
        image = np.ones(4)
        train = poisson_rate_code(
            image, 50_000, dt_ms=1.0, max_rate_hz=63.75, rng=np.random.default_rng(1)
        )
        # 63.75 Hz at 1 ms steps -> spike probability 0.06375
        assert train.mean() == pytest.approx(0.06375, rel=0.05)

    def test_deterministic_given_rng(self, image):
        a = poisson_rate_code(image, 20, rng=np.random.default_rng(3))
        b = poisson_rate_code(image, 20, rng=np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestRankOrder:
    def test_each_active_pixel_spikes_exactly_once(self, image):
        train = rank_order_code(image, 100)
        assert np.array_equal(train.sum(axis=0), (image > 0).astype(int))

    def test_brighter_spikes_earlier(self):
        image = np.array([0.2, 0.9, 0.5])
        train = rank_order_code(image, 30)
        times = train.argmax(axis=0)
        assert times[1] < times[2] < times[0]

    def test_all_zero_image_is_silent(self):
        train = rank_order_code(np.zeros(8), 10)
        assert train.sum() == 0


class TestPhase:
    def test_period_structure(self):
        image = np.array([1.0])
        train = phase_code(image, 16, period=8)
        assert np.array_equal(train[:8], train[8:])

    def test_stronger_pixel_spikes_in_early_phase(self):
        image = np.array([1.0, 1 / 255.0])
        train = phase_code(image, 8, period=8)
        # full intensity has its MSB set -> spikes in phase 0
        assert train[0, 0]
        assert not train[0, 1]

    def test_zero_pixel_silent(self):
        train = phase_code(np.array([0.0]), 16)
        assert train.sum() == 0


class TestBurst:
    def test_burst_length_scales_with_intensity(self):
        image = np.array([1.0, 0.5, 0.0])
        train = burst_code(image, 10, max_burst=4)
        assert train[:, 0].sum() == 4
        assert train[:, 1].sum() == 2
        assert train[:, 2].sum() == 0

    def test_burst_is_contiguous_from_start(self):
        train = burst_code(np.array([1.0]), 10, max_burst=3)
        assert np.array_equal(np.flatnonzero(train[:, 0]), np.arange(3))

    def test_burst_clipped_by_window(self):
        train = burst_code(np.array([1.0]), 2, max_burst=5)
        assert train[:, 0].sum() == 2


class TestRegistry:
    def test_all_four_codings_registered(self):
        # Section II-A cites rate, rank-order, phase and burst coding.
        assert set(ENCODERS) == {"rate", "rank-order", "phase", "burst"}

"""Tests of model save/load."""

import numpy as np
import pytest

from repro.snn.serialization import load_model, save_model
from repro.snn.training import TrainedModel


@pytest.fixture
def model(rng):
    return TrainedModel(
        weights=rng.random((16, 4)),
        theta=rng.random(4),
        assignments=np.array([0, 3, -1, 7], dtype=np.int64),
        n_input=16,
        n_neurons=4,
        accuracy=0.875,
        metadata={"epochs": 2, "fault_aware": True},
    )


class TestRoundTrip:
    def test_all_fields_preserved(self, model, tmp_path):
        path = save_model(model, tmp_path / "model.npz")
        loaded = load_model(path)
        assert np.array_equal(loaded.weights, model.weights)
        assert np.array_equal(loaded.theta, model.theta)
        assert np.array_equal(loaded.assignments, model.assignments)
        assert loaded.n_input == 16
        assert loaded.n_neurons == 4
        assert loaded.accuracy == pytest.approx(0.875)
        assert loaded.metadata == model.metadata

    def test_suffix_appended(self, model, tmp_path):
        path = save_model(model, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_parent_directories_created(self, model, tmp_path):
        path = save_model(model, tmp_path / "a" / "b" / "model.npz")
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope.npz")

    def test_corrupt_shape_rejected(self, model, tmp_path):
        path = save_model(model, tmp_path / "model.npz")
        with np.load(path) as archive:
            payload = dict(archive)
        payload["theta"] = np.zeros(99)
        np.savez(path, **payload)
        with pytest.raises(ValueError):
            load_model(path)

    def test_no_pickle_on_load(self, model, tmp_path):
        # the loader must not enable pickle (code-execution surface)
        path = save_model(model, tmp_path / "model.npz")
        loaded = load_model(path)  # would raise if any field needed pickle
        assert loaded.metadata["fault_aware"] is True

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.dram.organization import DramOrganization
from repro.dram.specs import tiny_spec


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dram():
    """A miniature DRAM spec: 2 banks x 2 subarrays x 4 rows x 8 cols."""
    return tiny_spec()


@pytest.fixture
def tiny_organization(tiny_dram):
    return DramOrganization(tiny_dram)


@pytest.fixture(scope="session")
def mini_mnist():
    """A small but trainable dataset reused across tests."""
    return load_dataset("mnist", n_train=80, n_test=50, seed=7)


@pytest.fixture(scope="session")
def mini_fashion():
    return load_dataset("fashion", n_train=80, n_test=50, seed=13)


@pytest.fixture
def run_record_factory():
    """Factory for hand-built RunRecords (no training) in serialisation tests."""
    from repro.pipeline import RunRecord, VoltagePoint

    def make(run_id="abc123", **overrides):
        base = dict(
            run_id=run_id,
            params={"voltages": (1.175,)},
            dataset="mnist",
            n_neurons=12,
            seed=42,
            representation="float32",
            mapping_policy="sparkxd",
            baseline_accuracy=0.5,
            improved_accuracy=0.48,
            ber_threshold=1e-3,
            mean_energy_saving=0.2,
            voltages=(
                VoltagePoint(1.175, 1e-6, True, "sparkxd-algorithm2", 0.2, 1.01, 0.014),
                VoltagePoint(1.025, 1e-3, False, "sparkxd", 0.0, 0.0, None),
            ),
            wall_time_s=1.5,
            cache_hits=3,
            cache_misses=1,
        )
        base.update(overrides)
        return RunRecord(**base)

    return make

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.dram.organization import DramOrganization
from repro.dram.specs import tiny_spec


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dram():
    """A miniature DRAM spec: 2 banks x 2 subarrays x 4 rows x 8 cols."""
    return tiny_spec()


@pytest.fixture
def tiny_organization(tiny_dram):
    return DramOrganization(tiny_dram)


@pytest.fixture(scope="session")
def mini_mnist():
    """A small but trainable dataset reused across tests."""
    return load_dataset("mnist", n_train=80, n_test=50, seed=7)


@pytest.fixture(scope="session")
def mini_fashion():
    return load_dataset("fashion", n_train=80, n_test=50, seed=13)

"""Tests of the training-health diagnostics."""

import numpy as np
import pytest

from repro.snn.diagnostics import TrainingHealth, _gini, check_training_health
from repro.snn.network import DiehlCookNetwork, NetworkParameters


def make_health(**overrides):
    base = dict(
        mean_spikes_per_sample=10.0,
        active_neuron_fraction=0.9,
        spike_concentration=0.3,
        theta_dispersion=0.4,
        receptive_field_similarity=0.5,
    )
    base.update(overrides)
    return TrainingHealth(**base)


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini(np.ones(50)) == pytest.approx(0.0, abs=1e-9)

    def test_single_spike_owner_is_near_one(self):
        values = np.zeros(100)
        values[0] = 42
        assert _gini(values) > 0.95

    def test_all_zero_is_zero(self):
        assert _gini(np.zeros(10)) == 0.0

    def test_monotone_with_concentration(self):
        even = np.array([1.0, 1.0, 1.0, 1.0])
        skewed = np.array([0.1, 0.1, 0.1, 3.7])
        assert _gini(skewed) > _gini(even)


class TestFailureModes:
    def test_healthy_network_has_no_warnings(self):
        assert make_health().warnings() == ()

    def test_silence_detected(self):
        health = make_health(mean_spikes_per_sample=0.2)
        assert health.is_silent
        assert any("silent" in w for w in health.warnings())

    def test_lockstep_detected(self):
        health = make_health(theta_dispersion=0.01, receptive_field_similarity=0.99)
        assert health.is_lockstep
        assert any("lockstep" in w for w in health.warnings())

    def test_degenerate_detected(self):
        health = make_health(spike_concentration=0.95)
        assert health.is_degenerate
        assert any("dominate" in w for w in health.warnings())


class TestProbe:
    def test_probe_on_fresh_network(self, mini_mnist, rng):
        net = DiehlCookNetwork(NetworkParameters(n_neurons=20), rng=rng)
        health = check_training_health(
            net, mini_mnist.train_images[:10], n_steps=40, rng=rng
        )
        assert 0.0 <= health.active_neuron_fraction <= 1.0
        assert 0.0 <= health.spike_concentration <= 1.0
        assert -1.0 <= health.receptive_field_similarity <= 1.0

    def test_probe_preserves_network_state(self, mini_mnist, rng):
        net = DiehlCookNetwork(NetworkParameters(n_neurons=20), rng=rng)
        theta = net.neurons.theta.copy()
        weights = net.weights.copy()
        check_training_health(net, mini_mnist.train_images[:5], n_steps=30, rng=rng)
        assert np.array_equal(net.neurons.theta, theta)
        assert np.array_equal(net.weights, weights)

    def test_lockstep_network_flagged(self, mini_mnist, rng):
        # no symmetry breaking + identical fields = the collapse signature
        params = NetworkParameters(n_neurons=30, theta_init_max=0.0)
        net = DiehlCookNetwork(params, rng=rng)
        net.weights[:] = 0.025  # identical receptive fields
        net.neurons.theta[:] = 10.0  # identical, nonzero thresholds
        health = check_training_health(
            net, mini_mnist.train_images[:8], n_steps=30, rng=rng
        )
        assert health.theta_dispersion < 0.05
        assert health.receptive_field_similarity > 0.95
        assert health.is_lockstep

    def test_empty_probe_rejected(self, rng):
        net = DiehlCookNetwork(NetworkParameters(n_neurons=5), rng=rng)
        with pytest.raises(ValueError):
            check_training_health(net, np.empty((0, 784)), rng=rng)

"""Unit tests of SparkXDResult aggregation (no training involved)."""

import numpy as np
import pytest

from repro.core.config import SparkXDConfig
from repro.core.fault_aware_training import FaultAwareTrainingResult
from repro.core.framework import SparkXD, SparkXDResult, VoltageOutcome
from repro.core.tolerance_analysis import TolerancePoint, ToleranceReport
from repro.snn.training import TrainedModel


def make_model(accuracy):
    return TrainedModel(
        weights=np.zeros((4, 2)),
        theta=np.zeros(2),
        assignments=np.zeros(2, dtype=np.int64),
        n_input=4,
        n_neurons=2,
        accuracy=accuracy,
    )


def make_result():
    config = SparkXDConfig.small()
    frame = SparkXD(config.with_overrides(n_neurons=2))
    baseline_dram, outcomes = frame.evaluate_dram(
        n_weights=256, bits_per_weight=32, ber_threshold=1e-3
    )
    baseline = make_model(0.9)
    improved = make_model(0.89)
    training = FaultAwareTrainingResult(
        model=improved, rates=(1e-5, 1e-3),
        accuracy_per_rate={1e-5: 0.9, 1e-3: 0.89}, selected_rate=1e-3,
    )
    tolerance = ToleranceReport(
        points=(TolerancePoint(1e-5, 0.9, 1), TolerancePoint(1e-3, 0.89, 1)),
        target_accuracy=0.85,
        ber_threshold=1e-3,
        baseline_accuracy=0.9,
    )
    return SparkXDResult(
        config=frame.config,
        baseline_model=baseline,
        improved_model=improved,
        training=training,
        tolerance=tolerance,
        baseline_dram=baseline_dram,
        outcomes=outcomes,
    )


class TestResultAggregation:
    def test_mean_energy_saving_over_feasible_only(self):
        result = make_result()
        feasible = [o.energy_saving for o in result.outcomes.values() if o.feasible]
        assert result.mean_energy_saving() == pytest.approx(np.mean(feasible))

    def test_ber_threshold_passthrough(self):
        result = make_result()
        assert result.ber_threshold == 1e-3

    def test_summary_lists_every_voltage(self):
        result = make_result()
        text = result.summary()
        for v in result.config.voltages:
            assert f"{v:.3f} V" in text
        assert "mean energy saving" in text

    def test_infeasible_outcomes_marked(self):
        result = make_result()
        # force one outcome infeasible and re-summarise
        v = min(result.outcomes)
        result.outcomes[v] = VoltageOutcome(
            v_supply=v, device_ber=1e-3, feasible=False,
            mapping_policy="sparkxd-algorithm2", result=None,
            energy_saving=0.0, speedup=0.0,
        )
        assert "infeasible" in result.summary()
        assert result.mean_energy_saving() > 0  # other voltages still count

    def test_no_feasible_outcomes_mean_is_zero(self):
        result = make_result()
        for v in list(result.outcomes):
            result.outcomes[v] = VoltageOutcome(
                v_supply=v, device_ber=1e-3, feasible=False,
                mapping_policy="sparkxd-algorithm2", result=None,
                energy_saving=0.0, speedup=0.0,
            )
        assert result.mean_energy_saving() == 0.0

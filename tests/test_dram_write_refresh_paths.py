"""Tests of the write-traffic and refresh-inclusive controller paths."""

import numpy as np
import pytest

from repro.dram.commands import CommandKind
from repro.dram.controller import DramController
from repro.dram.specs import tiny_spec


@pytest.fixture
def controller():
    return DramController(tiny_spec())


class TestWriteTraffic:
    def test_write_trace_issues_wr_commands(self, controller):
        result = controller.execute([0, 1, 2], 1.35, write=True)
        assert result.stats.command_counts[CommandKind.WR] == 3
        assert result.stats.command_counts[CommandKind.RD] == 0

    def test_write_costs_more_than_read(self, controller):
        read = controller.execute(list(range(8)), 1.35, write=False)
        write = controller.execute(list(range(8)), 1.35, write=True)
        assert write.energy.total_nj > read.energy.total_nj

    def test_write_has_same_row_buffer_behaviour(self, controller):
        read = controller.execute(list(range(8)), 1.35, write=False)
        write = controller.execute(list(range(8)), 1.35, write=True)
        assert write.stats.hits == read.stats.hits
        assert write.stats.total_time_ns == pytest.approx(read.stats.total_time_ns)

    def test_write_energy_saving_at_reduced_voltage(self, controller):
        nominal = controller.execute(list(range(8)), 1.35, write=True)
        reduced = controller.execute(list(range(8)), 1.025, write=True)
        assert reduced.energy.total_nj < nominal.energy.total_nj


class TestRefreshInclusion:
    def test_refresh_adds_energy(self, controller):
        base = controller.execute(list(range(16)), 1.35)
        with_refresh = controller.execute(list(range(16)), 1.35, include_refresh=True)
        assert with_refresh.energy.total_nj > base.energy.total_nj
        # identical access behaviour, only background energy changes
        assert with_refresh.stats.accesses == base.stats.accesses
        assert with_refresh.energy.command_nj == pytest.approx(base.energy.command_nj)

    def test_refresh_share_is_small_for_busy_traces(self, controller):
        base = controller.execute(list(range(16)), 1.35)
        with_refresh = controller.execute(list(range(16)), 1.35, include_refresh=True)
        extra = with_refresh.energy.total_nj - base.energy.total_nj
        assert extra / with_refresh.energy.total_nj < 0.2

"""Peer-to-peer artifact fabric + journal compaction tests.

The fabric contract: with peers enabled, artifact bytes flow
worker-to-worker (the coordinator serves metadata: lease ``sources``
hints and ``locate`` answers) and every failure mode — dead peer,
refused key, stale hint — falls back transparently to the hub, so
records stay value-identical to the serial Runner no matter which path
the bytes took.  With ``--no-peer-sync`` the PR 4/5 hub topology is
reproduced exactly.

The compaction contract: a compacted journal replays to the identical
plan state as the full transition log, at O(done jobs) size.
"""

import contextlib
import json
import pickle
import socket
import threading

import pytest

from repro import SparkXDConfig
from repro.analysis.export import records_equivalent
from repro.cluster import (
    ClusterClient,
    ClusterExecutor,
    CoordinatorServer,
    ProtocolError,
    SweepJournal,
    SweepPlan,
    local_worker_threads,
)
from repro.cluster.journal import JournalMismatch
from repro.cluster.protocol import (
    GZIP_MIN_BYTES,
    encode_blob,
    recv_message,
    send_message,
)
from repro.cluster.sync import ArtifactSync
from repro.cluster.worker import _PeerServer
from repro.pipeline import ArtifactStore, Runner, default_stages

TINY = SparkXDConfig.small(
    n_train=40,
    n_test=25,
    n_neurons=12,
    n_steps=30,
    baseline_epochs=1,
    ber_rates=(1e-5, 1e-3),
    accuracy_bound=0.5,
)
GRID = {"voltages": [(1.325,), (1.025,)]}


@pytest.fixture(scope="module")
def serial_sweep():
    """The serial reference: records plus the warmed store."""
    store = ArtifactStore()
    records = Runner(TINY, store=store).run(GRID)
    return records, store


def _dead_address() -> str:
    """A localhost ``host:port`` where nothing is listening."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    return f"127.0.0.1:{port}"


# ----------------------------------------------------------------------
class TestPeerServer:
    def test_peer_get_round_trip(self):
        store = ArtifactStore()
        store.put("stage", "digest", {"weights": [1.0, 2.0]})
        server = _PeerServer(store).start()
        try:
            client = ClusterClient(("127.0.0.1", server.port))
            reply, blob = client.request(
                {"op": "peer_get", "stage": "stage", "digest": "digest"}
            )
            assert reply["found"]
            assert pickle.loads(blob) == {"weights": [1.0, 2.0]}
            stats = server.transfer_stats()
            assert stats["served"] == 1
            assert stats["served_bytes"] == len(blob)
        finally:
            server.stop()

    def test_missing_key_is_refusal_not_error(self):
        server = _PeerServer(ArtifactStore()).start()
        try:
            client = ClusterClient(("127.0.0.1", server.port))
            reply, blob = client.request(
                {"op": "peer_get", "stage": "s", "digest": "gone"}
            )
            assert reply == {"found": False}
            assert blob is None
            assert server.transfer_stats()["served"] == 0
        finally:
            server.stop()

    def test_peer_has_filters(self):
        store = ArtifactStore()
        store.put("a", "1", "x")
        server = _PeerServer(store).start()
        try:
            client = ClusterClient(("127.0.0.1", server.port))
            reply, _ = client.request(
                {"op": "peer_has", "keys": [["a", "1"], ["b", "2"]]}
            )
            assert reply["present"] == [["a", "1"]]
        finally:
            server.stop()

    def test_unknown_op_is_error_reply(self):
        server = _PeerServer(ArtifactStore()).start()
        try:
            client = ClusterClient(("127.0.0.1", server.port))
            with pytest.raises(ProtocolError, match="unknown op"):
                client.request({"op": "lease"})
        finally:
            server.stop()

    def test_gzip_accept_shrinks_wire_bytes(self):
        store = ArtifactStore()
        store.put("s", "d", [0.0] * 4096)  # compressible, > GZIP_MIN_BYTES
        server = _PeerServer(store).start()
        try:
            client = ClusterClient(("127.0.0.1", server.port))
            reply, blob = client.request(
                {"op": "peer_get", "stage": "s", "digest": "d",
                 "accept": ["gzip"]}
            )
            assert pickle.loads(blob) == [0.0] * 4096
            # Decoded transparently; the wire size is surfaced and small.
            assert reply["blob_wire_bytes"] < len(blob)
            stats = server.transfer_stats()
            assert stats["served_wire_bytes"] == reply["blob_wire_bytes"]
            assert stats["served_bytes"] == len(blob)
        finally:
            server.stop()


# ----------------------------------------------------------------------
class TestPeerRouting:
    """The plan's holdings map as the fabric routing table (no sockets)."""

    def test_locate_answers_from_holdings(self):
        plan = SweepPlan(TINY, {}, ArtifactStore(), lease_timeout=10.0)
        plan.register_peer("w1", "10.0.0.1", 7001)
        plan.lease("w1", holding=[["train-baseline", "abc"]])
        located = plan.locate([("train-baseline", "abc"), ("other", "zzz")])
        assert located == [["train-baseline", "abc", ["10.0.0.1:7001"]]]

    def test_locate_excludes_requester(self):
        plan = SweepPlan(TINY, {}, ArtifactStore(), lease_timeout=10.0)
        plan.register_peer("w1", "10.0.0.1", 7001)
        plan.lease("w1", holding=[["a", "1"]])
        assert plan.locate([("a", "1")], exclude="w1") == []

    def test_locate_drops_dead_workers(self):
        clock = {"now": 0.0}
        plan = SweepPlan(
            TINY, {}, ArtifactStore(),
            lease_timeout=10.0, clock=lambda: clock["now"],
        )
        plan.register_peer("w1", "10.0.0.1", 7001)
        plan.lease("w1", holding=[["a", "1"]])
        assert plan.locate([("a", "1")]) != []
        clock["now"] = 31.0  # past the 3x lease_timeout liveness window
        assert plan.locate([("a", "1")]) == []

    def test_unregistered_worker_never_listed(self):
        plan = SweepPlan(TINY, {}, ArtifactStore(), lease_timeout=10.0)
        plan.lease("w1", holding=[["a", "1"]])  # holdings but no peer_port
        assert plan.locate([("a", "1")]) == []

    def test_peer_sync_disabled_answers_nothing(self):
        plan = SweepPlan(
            TINY, {}, ArtifactStore(), lease_timeout=10.0, peer_sync=False
        )
        plan.register_peer("w1", "10.0.0.1", 7001)
        plan.lease("w1", holding=[["a", "1"]])
        assert plan.locate([("a", "1")]) == []

    def test_complete_folds_chain_into_holdings(self):
        plan = SweepPlan(TINY, {}, ArtifactStore(), lease_timeout=10.0)
        job = plan.lease("w1")
        plan.store.put(job.stage, job.digest, "artifact")
        assert plan.complete("w1", job.job_id)
        assert plan.worker_holding_count("w1") == len(job.upstream) + 1
        plan.register_peer("w1", "10.0.0.1", 7001)
        assert plan.locate([(job.stage, job.digest)]) == [
            [job.stage, job.digest, ["10.0.0.1:7001"]]
        ]


# ----------------------------------------------------------------------
def _hub(store=None):
    """A coordinator over an empty plan, as a pure artifact hub."""
    store = store if store is not None else ArtifactStore()
    plan = SweepPlan(TINY, {}, store, lease_timeout=10.0)
    for job in plan.jobs.values():  # mark everything done: serving only
        store.put(job.stage, job.digest, "x")
        plan.complete("setup", job.job_id)
    return CoordinatorServer(plan, store, port=0)


class TestSyncPeerFirst:
    def test_peer_preferred_over_hub(self):
        hub_store = ArtifactStore()
        hub_store.put("s", "d", "hub copy")
        peer_store = ArtifactStore()
        peer_store.put("s", "d", "hub copy")
        peer = _PeerServer(peer_store).start()
        with _hub(hub_store) as server:
            try:
                sync = ArtifactSync(
                    ClusterClient(server.address),
                    ArtifactStore(),
                    sources=[["s", "d", [f"127.0.0.1:{peer.port}"]]],
                )
                assert sync.pull("s", "d")
                assert sync.pulled_bytes_peer > 0
                assert sync.pulled_bytes_hub == 0
                assert server.transfer_stats()["get_count"] == 0
            finally:
                peer.stop()

    def test_dead_peer_falls_back_to_hub(self):
        hub_store = ArtifactStore()
        hub_store.put("s", "d", "only the hub has it")
        dead = _dead_address()
        with _hub(hub_store) as server:
            sync = ArtifactSync(
                ClusterClient(server.address),
                ArtifactStore(),
                sources=[["s", "d", [dead]]],
            )
            assert sync.pull("s", "d")
            assert sync.pulled_bytes_hub > 0
            assert sync.peer_fallbacks == 1
            # The address is dead for the whole session: a second pull
            # must not re-dial it.
            assert dead in sync._dead_peers

    def test_peer_dying_mid_transfer_falls_back(self):
        """A peer that truncates the blob mid-send is a fallback, not a
        job failure: the partial bytes never reach the store."""
        hub_store = ArtifactStore()
        hub_store.put("s", "d", "authoritative")
        ready = threading.Event()
        holder = {}

        def truncating_peer():
            listener = socket.socket()
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            holder["port"] = listener.getsockname()[1]
            ready.set()
            conn, _ = listener.accept()
            with conn, listener:
                recv_message(conn.makefile("rb"))
                # Announce a big blob, send almost none of it, die.
                conn.sendall(b'{"found": true, "blob_bytes": 99999}\n')
                conn.sendall(b"x" * 16)

        thread = threading.Thread(target=truncating_peer, daemon=True)
        thread.start()
        assert ready.wait(5.0)
        with _hub(hub_store) as server:
            sync = ArtifactSync(
                ClusterClient(server.address),
                ArtifactStore(),
                sources=[["s", "d", [f"127.0.0.1:{holder['port']}"]]],
            )
            assert sync.pull("s", "d")
        thread.join(timeout=5.0)
        assert sync.store.get("s", "d") == "authoritative"
        assert sync.pulled_bytes_peer == 0
        assert sync.peer_fallbacks == 1

    def test_peer_refusing_evicted_key_falls_back(self):
        hub_store = ArtifactStore()
        hub_store.put("s", "d", "evicted from the peer")
        peer = _PeerServer(ArtifactStore()).start()  # holds nothing
        address = f"127.0.0.1:{peer.port}"
        with _hub(hub_store) as server:
            try:
                sync = ArtifactSync(
                    ClusterClient(server.address),
                    ArtifactStore(),
                    sources=[["s", "d", [address]]],
                )
                assert sync.pull("s", "d")
                assert sync.pulled_bytes_hub > 0
                # A refusal is not a death sentence: the peer stays
                # dialable for other keys.
                assert address not in sync._dead_peers
                assert sync.peer_has(address, [("s", "d")]) == []
            finally:
                peer.stop()

    def test_peer_sync_disabled_ignores_sources(self):
        hub_store = ArtifactStore()
        hub_store.put("s", "d", "hub")
        with _hub(hub_store) as server:
            sync = ArtifactSync(
                ClusterClient(server.address),
                ArtifactStore(),
                peer_sync=False,
                sources=[["s", "d", [_dead_address()]]],
            )
            assert sync.pull("s", "d")
            assert sync.pulled_bytes_hub > 0
            assert sync.peer_fallbacks == 0  # never even considered


class _FlakyClient:
    """Duck-typed ClusterClient: fails N times, then succeeds."""

    def __init__(self, failures, error=OSError("connection reset")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def request(self, payload, blob=None, check=True, encoding=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return {"ok": True, "found": False, "present": []}, None


class TestRetryBackoff:
    def test_transient_errors_are_retried(self):
        client = _FlakyClient(failures=2)
        sync = ArtifactSync(client, ArtifactStore(), backoff_s=0.001)
        assert sync.remote_has([("s", "d")]) == []
        assert client.calls == 3
        assert sync.retries == 2

    def test_attempts_are_bounded(self):
        client = _FlakyClient(failures=99)
        sync = ArtifactSync(
            client, ArtifactStore(), max_attempts=3, backoff_s=0.001
        )
        with pytest.raises(OSError):
            sync.remote_has([("s", "d")])
        assert client.calls == 3

    def test_error_replies_are_not_retried(self):
        # A deterministic error reply must surface immediately —
        # retrying it would just repeat the same answer N times.
        client = _FlakyClient(failures=99, error=ProtocolError("bad request"))
        sync = ArtifactSync(client, ArtifactStore(), backoff_s=0.001)
        with pytest.raises(ProtocolError):
            sync.remote_has([("s", "d")])
        assert client.calls == 1
        assert sync.retries == 0


# ----------------------------------------------------------------------
class TestGzipWire:
    def test_small_blobs_stay_raw(self):
        blob = b"tiny"
        assert encode_blob(blob, ["gzip"]) == (blob, None)

    def test_unaccepted_blobs_stay_raw(self):
        blob = b"\x00" * (GZIP_MIN_BYTES * 2)
        assert encode_blob(blob, []) == (blob, None)

    def test_compressible_blob_shrinks(self):
        blob = b"\x00" * (GZIP_MIN_BYTES * 2)
        wire, encoding = encode_blob(blob, ["gzip"])
        assert encoding == "gzip"
        assert len(wire) < len(blob)

    def test_round_trip_decodes_transparently(self):
        import io

        blob = b"\x01\x02" * GZIP_MIN_BYTES
        wire, encoding = encode_blob(blob, ["gzip"])
        buffer = io.BytesIO()
        send_message(buffer, {"op": "put"}, wire, encoding=encoding)
        buffer.seek(0)
        payload, decoded = recv_message(buffer)
        assert decoded == blob
        assert payload["blob_wire_bytes"] == len(wire)

    def test_corrupt_gzip_is_protocol_error(self):
        import io

        buffer = io.BytesIO()
        send_message(
            buffer, {"op": "put"}, b"not gzip at all", encoding="gzip"
        )
        buffer.seek(0)
        with pytest.raises(ProtocolError, match="corrupt gzip"):
            recv_message(buffer)

    def test_unknown_encoding_is_protocol_error(self):
        import io

        buffer = io.BytesIO()
        send_message(buffer, {"op": "put"}, b"payload", encoding="zstd")
        buffer.seek(0)
        with pytest.raises(ProtocolError, match="unknown blob encoding"):
            recv_message(buffer)

    def test_push_compresses_only_with_hub_capability(self):
        artifact = [0.0] * 8192
        for caps, expect_compressed in ((), False), (("gzip",), True):
            local = ArtifactStore()
            local.put("s", "d", artifact)
            hub_store = ArtifactStore()
            with _hub(hub_store) as server:
                sync = ArtifactSync(
                    ClusterClient(server.address),
                    local,
                    hub_caps=caps,
                )
                assert sync.push("s", "d")
                if expect_compressed:
                    assert sync.pushed_wire_bytes < sync.pushed_bytes
                else:
                    assert sync.pushed_wire_bytes == sync.pushed_bytes
                # The hub decoded transparently: value-identical bytes.
                assert hub_store.get("s", "d") == artifact


# ----------------------------------------------------------------------
class TestTelemetryWireCompat:
    """The optional ``telemetry``/``trace`` fields degrade exactly like
    the gzip caps handshake: either side may predate them and the
    protocol still interoperates (``.get()`` on receive, unknown keys
    ignored on reply)."""

    @staticmethod
    def _server():
        store = ArtifactStore()
        plan = SweepPlan(TINY, GRID, store, lease_timeout=10.0)
        return CoordinatorServer(plan, store, port=0)

    def test_old_worker_without_telemetry_field_interoperates(self):
        server = self._server()
        try:
            reply, _, _ = server._dispatch({"op": "hello", "worker": "old"}, None)
            assert reply["ok"] and "caps" in reply
            reply, _, _ = server._dispatch({"op": "lease", "worker": "old"}, None)
            assert "job" in reply
            # No sweep span installed on this server: no trace key, so
            # a pre-telemetry worker never sees the field at all.
            assert "trace" not in reply
            job_id = reply["job"]["job_id"]
            reply, _, _ = server._dispatch(
                {"op": "heartbeat", "worker": "old", "job_id": job_id}, None
            )
            assert reply["ok"]
            status, _, _ = server._dispatch({"op": "status"}, None)
            # The worker is live yet absent from the telemetry view —
            # it simply never reported a snapshot.
            assert "old" in status["workers"]
            assert "old" not in status["telemetry"]["workers"]
        finally:
            server._server.server_close()

    def test_worker_snapshots_aggregate_latest_wins(self):
        server = self._server()
        try:
            snap = {"metrics": {"counters": {"compat.test.jobs": 1}},
                    "open_spans": [{"name": "cluster.job", "age_s": 0.5}]}
            server._dispatch(
                {"op": "hello", "worker": "w1", "telemetry": snap}, None
            )
            later = {"metrics": {"counters": {"compat.test.jobs": 3}},
                     "open_spans": []}
            server._dispatch(
                {"op": "lease", "worker": "w1", "telemetry": later}, None
            )
            status, _, _ = server._dispatch({"op": "status"}, None)
            view = status["telemetry"]
            # Snapshots are cumulative: the latest replaces, never adds.
            assert (
                view["workers"]["w1"]["metrics"]["counters"]["compat.test.jobs"]
                == 3
            )
            assert view["fleet"]["counters"]["compat.test.jobs"] == 3
        finally:
            server._server.server_close()

    def test_malformed_telemetry_field_is_ignored(self):
        server = self._server()
        try:
            reply, _, _ = server._dispatch(
                {"op": "hello", "worker": "odd", "telemetry": "garbage"}, None
            )
            assert reply["ok"]
            status, _, _ = server._dispatch({"op": "status"}, None)
            assert "odd" not in status["telemetry"]["workers"]
        finally:
            server._server.server_close()

    def test_lease_carries_trace_only_when_context_set(self):
        server = self._server()
        try:
            server.trace_context = {"trace_id": "t" * 16, "span_id": "s" * 16}
            reply, _, _ = server._dispatch({"op": "lease", "worker": "w"}, None)
            assert reply["trace"] == {
                "trace_id": "t" * 16, "span_id": "s" * 16,
            }
        finally:
            server._server.server_close()

    def test_new_worker_against_old_style_replies(self):
        """A telemetry-aware worker adopts ``None`` trace context (old
        coordinators send no ``trace`` key) without starting a trace."""
        from repro.telemetry import adopt_context, current_context, span

        with adopt_context(None):
            assert current_context() is None
            with span("cluster.job"):  # tracing off: shared no-op
                pass
        assert current_context() is None


# ----------------------------------------------------------------------
class TestJournalCompaction:
    def _chattery_journal(self, path):
        journal = SweepJournal(path)
        journal.append({"event": "plan", "plan_id": "p1", "jobs": 2})
        for i in range(20):
            journal.append({"event": "lease", "job": "a:1", "worker": f"w{i}"})
            journal.append({"event": "requeue", "job": "a:1", "worker": f"w{i}"})
        journal.append({
            "event": "done", "job": "a:1", "stage": "a", "digest": "1",
            "worker": "w9", "stats": {"wall_s": 1.0},
        })
        journal.append({
            "event": "done", "job": "b:2", "stage": "b", "digest": "2",
            "worker": "w3", "stats": {},
        })
        return journal

    def test_compact_folds_to_header_plus_snapshot(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = self._chattery_journal(path)
        before = journal.done_events(plan_id="p1")
        summary = journal.compact()
        journal.close()
        assert summary["events_before"] == 43
        assert summary["events_after"] == 2
        assert summary["done"] == 2
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2  # O(done), not O(transitions)
        assert json.loads(lines[0])["event"] == "plan"
        assert json.loads(lines[1])["event"] == "snapshot"
        with SweepJournal(path, resume=True) as reopened:
            after = reopened.done_events(plan_id="p1")
        assert set(after) == set(before)
        assert after[("a", "1")]["worker"] == "w9"
        assert after[("a", "1")]["stats"] == {"wall_s": 1.0}

    def test_compaction_is_idempotent_and_appendable(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = self._chattery_journal(path)
        journal.compact()
        journal.compact()  # folding a snapshot is a no-op fold
        journal.append({
            "event": "done", "job": "c:3", "stage": "c", "digest": "3",
            "worker": "w1", "stats": {},
        })
        journal.close()
        with SweepJournal(path, resume=True) as reopened:
            done = reopened.done_events(plan_id="p1")
        assert set(done) == {("a", "1"), ("b", "2"), ("c", "3")}

    def test_snapshot_plan_id_mismatch_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = self._chattery_journal(path)
        journal.compact()
        journal.close()
        with SweepJournal(path, resume=True) as reopened:
            with pytest.raises(JournalMismatch):
                reopened.done_events(plan_id="some-other-sweep")

    def test_compact_every_bounds_the_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path, compact_every=10)
        journal.append({"event": "plan", "plan_id": "p1"})
        for i in range(100):
            journal.append({"event": "lease", "job": "a:1", "worker": "w"})
        journal.close()
        lines = path.read_text().strip().splitlines()
        # Never more than compact_every lines past the snapshot floor.
        assert len(lines) <= 12

    def test_plan_resumes_identically_from_compacted_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        store = ArtifactStore()
        with SweepJournal(path) as journal:
            plan = SweepPlan(
                TINY, GRID, store, lease_timeout=10.0, journal=journal
            )
            # Some requeue chatter plus two real completions.
            job = plan.lease("w1")
            plan.fail("w1", job.job_id, "induced")
            for _ in range(2):
                job = plan.lease("w1")
                store.put(job.stage, job.digest, f"artifact-{job.job_id}")
                assert plan.complete("w1", job.job_id)
            reference = plan.counts()
            done_ids = {
                j.job_id for j in plan.jobs.values() if j.state == "done"
            }
        with SweepJournal(path, resume=True) as journal:
            assert journal.compact()["events_after"] == 2
        with SweepJournal(path, resume=True) as journal:
            resumed = SweepPlan(
                TINY, GRID, store, lease_timeout=10.0, journal=journal
            )
            assert resumed.replayed_done == len(done_ids)
            counts = resumed.counts()
            assert counts["done"] == reference["done"]
            assert counts["pending"] == reference["pending"] + reference["leased"]
            assert {
                j.job_id for j in resumed.jobs.values() if j.state == "done"
            } == done_ids
            # Worker attribution and stats survive the fold.
            for job_id in done_ids:
                assert resumed.jobs[job_id].worker == "w1"

    def test_offline_cli_compact(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "journal.jsonl"
        journal = self._chattery_journal(path)
        journal.close()
        exit_code = main([
            "cluster", "journal", "compact", str(path), "--json"
        ])
        summary = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert summary["events_before"] == 43
        assert summary["events_after"] == 2
        with SweepJournal(path, resume=True) as reopened:
            assert set(reopened.done_events(plan_id="p1")) == {
                ("a", "1"), ("b", "2"),
            }

    def test_offline_cli_compact_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        exit_code = main([
            "cluster", "journal", "compact", str(tmp_path / "nope.jsonl")
        ])
        assert exit_code == 1


# ----------------------------------------------------------------------
class TestPeerFabricE2E:
    def test_two_workers_empty_store_zero_hub_gets(self, serial_sweep):
        """The acceptance benchmark in miniature: an empty coordinator
        store and two workers — every artifact is computed by a live
        peer, so every pull is peer-served and the hub serves zero
        ``get`` bytes."""
        serial_records, _ = serial_sweep
        executor = ClusterExecutor(
            TINY,
            store=ArtifactStore(),
            lease_timeout=10.0,
            poll_s=0.05,
            wait_timeout=300.0,
            affinity=False,  # maximise cross-worker transfers
        )
        agents = []
        with contextlib.ExitStack() as stack:
            records = executor.run(
                GRID,
                on_ready=lambda address: agents.extend(
                    stack.enter_context(
                        local_worker_threads(address, 2, max_idle_s=60.0)
                    )
                ),
            )
        assert records_equivalent(serial_records, records)
        transfers = executor.last_transfer_stats
        assert transfers["get_count"] == 0
        assert transfers["get_bytes"] == 0
        assert sum(a.stats.bytes_pulled_hub for a in agents) == 0
        # Completions (not pushes) keep the routing table fresh enough
        # that workers never needed a full holdings re-report; any
        # cross-worker pull was peer-served.
        pulled = sum(a.stats.bytes_pulled for a in agents)
        assert pulled == sum(a.stats.bytes_pulled_peer for a in agents)

    def test_no_peer_sync_reproduces_hub_topology(self, serial_sweep):
        """--no-peer-sync parity: same records, every byte via the hub."""
        serial_records, _ = serial_sweep
        executor = ClusterExecutor(
            TINY,
            store=ArtifactStore(),
            lease_timeout=10.0,
            poll_s=0.05,
            wait_timeout=300.0,
            affinity=False,
            peer_sync=False,
        )
        agents = []
        with contextlib.ExitStack() as stack:
            records = executor.run(
                GRID,
                on_ready=lambda address: agents.extend(
                    stack.enter_context(
                        local_worker_threads(
                            address, 2, max_idle_s=60.0, peer=False
                        )
                    )
                ),
            )
        assert records_equivalent(serial_records, records)
        assert sum(a.stats.bytes_pulled_peer for a in agents) == 0
        assert sum(a.stats.peer_served for a in agents) == 0
        # Whatever was pulled came from the hub, byte for byte.
        transfers = executor.last_transfer_stats
        assert transfers["get_bytes"] == sum(
            a.stats.bytes_pulled for a in agents
        )

"""Tests of the CSV export helpers."""

import csv

import pytest

from repro.analysis.export import (
    export_accuracy_curve,
    export_tolerance_report,
    write_rows,
)
from repro.analysis.sweeps import AccuracySweepPoint
from repro.core.tolerance_analysis import TolerancePoint, ToleranceReport


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestWriteRows:
    def test_roundtrip(self, tmp_path):
        path = write_rows(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        rows = read_csv(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_suffix_appended(self, tmp_path):
        path = write_rows(tmp_path / "out", ["a"], [[1]])
        assert path.suffix == ".csv"

    def test_ragged_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows(tmp_path / "out.csv", ["a", "b"], [[1]])

    def test_parent_created(self, tmp_path):
        path = write_rows(tmp_path / "x" / "y.csv", ["a"], [[1]])
        assert path.exists()


class TestDomainExports:
    def test_accuracy_curve(self, tmp_path):
        points = (
            AccuracySweepPoint(ber=1e-5, accuracy=0.9),
            AccuracySweepPoint(ber=1e-3, accuracy=0.8),
        )
        path = export_accuracy_curve(tmp_path / "curve.csv", points, label="baseline")
        rows = read_csv(path)
        assert rows[0] == ["label", "ber", "accuracy"]
        assert rows[1][0] == "baseline"
        assert float(rows[2][2]) == 0.8

    def test_tolerance_report(self, tmp_path):
        report = ToleranceReport(
            points=(TolerancePoint(1e-5, 0.9, 2),),
            target_accuracy=0.88,
            ber_threshold=1e-5,
            baseline_accuracy=0.9,
        )
        path = export_tolerance_report(tmp_path / "tol.csv", report)
        rows = read_csv(path)
        kinds = [r[0] for r in rows[1:]]
        assert kinds == ["point", "target_accuracy", "ber_threshold"]
        assert float(rows[1][1]) == 1e-5


class TestRunRecordExports:
    def test_csv_one_row_per_voltage(self, tmp_path, run_record_factory):
        from repro.analysis.export import RUN_RECORD_CSV_HEADERS, export_run_records

        path = export_run_records(tmp_path / "sweep.csv", [run_record_factory()])
        rows = read_csv(path)
        assert rows[0] == RUN_RECORD_CSV_HEADERS
        assert len(rows) == 3  # header + two voltage points
        assert rows[1][0] == "abc123"
        assert float(rows[1][rows[0].index("v_supply")]) == 1.175
        assert rows[2][rows[0].index("energy_mj")] == ""  # infeasible point

    def test_csv_record_without_voltages_still_appears(self, tmp_path, run_record_factory):
        from repro.analysis.export import export_run_records

        path = export_run_records(
            tmp_path / "sweep.csv",
            [run_record_factory(voltages=(), mean_energy_saving=0.0)],
        )
        rows = read_csv(path)
        assert len(rows) == 2
        assert rows[1][0] == "abc123"

    def test_json_round_trip(self, tmp_path, run_record_factory):
        from repro.analysis.export import load_run_records, write_run_records_json

        records = [
            run_record_factory(),
            run_record_factory(run_id="def456", ber_threshold=None),
        ]
        path = write_run_records_json(tmp_path / "sweep", records)
        assert path.suffix == ".json"
        loaded = load_run_records(path)
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in records]
        assert loaded[1].ber_threshold is None

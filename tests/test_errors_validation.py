"""Tests of the error-model statistical validation utilities."""

import numpy as np
import pytest

from repro.errors.models import ErrorModel0, ErrorModel1, ErrorModel2, ErrorModel3
from repro.errors.validation import (
    data_dependence_ratio,
    sample_flip_positions,
    structure_score,
    uniformity_pvalue,
)

N_BITS = 600_000
BER = 2e-3
LANES = 64
ROW_BITS = 4096


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestModel0Statistics:
    def test_uniform_flips_pass_chi_square(self, rng):
        flips = sample_flip_positions(ErrorModel0(), N_BITS, BER, rng)
        assert uniformity_pvalue(flips, N_BITS) > 0.01

    def test_no_structural_concentration(self, rng):
        flips = sample_flip_positions(
            ErrorModel0(), N_BITS, BER, rng, lane_bits=LANES
        )
        lanes = np.arange(N_BITS, dtype=np.int64) % LANES
        assert structure_score(flips, lanes) < 3.0


class TestStructuredModelStatistics:
    def test_model1_concentrates_on_bitlines(self, rng):
        model = ErrorModel1(sigma=2.0, structure_seed=1)
        flips = sample_flip_positions(model, N_BITS, BER, rng, lane_bits=LANES)
        lanes = np.arange(N_BITS, dtype=np.int64) % LANES
        assert structure_score(flips, lanes) > 10.0

    def test_model1_uniform_along_other_axis(self, rng):
        # vertical structure must NOT show up on the wordline axis
        model = ErrorModel1(sigma=2.0, structure_seed=1)
        flips = sample_flip_positions(
            model, N_BITS, BER, rng, lane_bits=LANES, row_bits=ROW_BITS
        )
        rows = np.arange(N_BITS, dtype=np.int64) // ROW_BITS
        assert structure_score(flips, rows) < 5.0

    def test_model2_concentrates_on_wordlines(self, rng):
        model = ErrorModel2(sigma=2.0, structure_seed=2)
        flips = sample_flip_positions(
            model, N_BITS, BER, rng, row_bits=ROW_BITS
        )
        rows = np.arange(N_BITS, dtype=np.int64) // ROW_BITS
        assert structure_score(flips, rows) > 10.0


class TestModel3Statistics:
    def test_ratio_matches_configuration(self, rng):
        values = (np.arange(N_BITS) % 2).astype(np.uint8)
        model = ErrorModel3(one_to_zero_ratio=4.0)
        flips = sample_flip_positions(
            model, N_BITS, BER, rng, values=values
        )
        ratio = data_dependence_ratio(flips, values)
        assert ratio == pytest.approx(4.0, rel=0.35)

    def test_model0_is_data_independent(self, rng):
        values = (np.arange(N_BITS) % 2).astype(np.uint8)
        flips = sample_flip_positions(ErrorModel0(), N_BITS, BER, rng)
        ratio = data_dependence_ratio(flips, values)
        assert ratio == pytest.approx(1.0, rel=0.3)


class TestValidationHelpers:
    def test_uniformity_needs_enough_flips(self):
        with pytest.raises(ValueError):
            uniformity_pvalue(np.arange(10), 1000)

    def test_structure_score_needs_flips(self):
        with pytest.raises(ValueError):
            structure_score(np.empty(0, dtype=np.int64), np.zeros(10, dtype=np.int64))

    def test_data_dependence_needs_both_values(self):
        with pytest.raises(ValueError):
            data_dependence_ratio(np.array([0]), np.zeros(10, dtype=np.uint8))

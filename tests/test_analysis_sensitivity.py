"""Tests of the bit-position sensitivity analysis."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    flip_single_position,
    weight_perturbation_by_bit,
)
from repro.snn.quantization import FixedPointRepresentation, Float32Representation


@pytest.fixture
def weights(rng):
    return (rng.random((20, 10)) * 0.9 + 0.05).astype(np.float32)


class TestFlipSinglePosition:
    def test_flips_requested_fraction(self, weights):
        rep = Float32Representation(sanitize=False)
        out = flip_single_position(
            weights, rep, bit_position=0, flip_fraction=0.5,
            rng=np.random.default_rng(0),
        )
        changed = np.count_nonzero(out != weights)
        assert changed == weights.size // 2

    def test_only_named_bit_flipped(self, weights):
        rep = Float32Representation(sanitize=False)
        out = flip_single_position(
            weights, rep, bit_position=7, flip_fraction=1.0,
            rng=np.random.default_rng(0),
        )
        xor = np.bitwise_xor(weights.view(np.uint32), out.view(np.uint32))
        assert set(np.unique(xor)) == {1 << 7}

    def test_validation(self, weights):
        rep = Float32Representation()
        with pytest.raises(ValueError):
            flip_single_position(weights, rep, 0, 0.0, np.random.default_rng(0))
        with pytest.raises(IndexError):
            flip_single_position(weights, rep, 32, 0.5, np.random.default_rng(0))


class TestPerturbationByBit:
    def test_msb_dwarfs_lsb_for_fp32(self, weights):
        # The label-2 observation in weight space.
        rep = Float32Representation(clip_range=(0.0, 1.0))
        points = weight_perturbation_by_bit(
            weights, rep, flip_fraction=0.2, bit_positions=(0, 30)
        )
        by_bit = {p.bit_position: p.mean_weight_change for p in points}
        assert by_bit[30] > 1e3 * max(by_bit[0], 1e-12)

    def test_int8_perturbation_doubles_per_bit(self, weights):
        # fixed point: bit k moves the weight by exactly step * 2^k.
        rep = FixedPointRepresentation(bits=8)
        points = weight_perturbation_by_bit(
            weights, rep, flip_fraction=1.0, bit_positions=(0, 1, 2)
        )
        changes = [p.mean_weight_change for p in points]
        assert changes[1] == pytest.approx(2 * changes[0], rel=1e-6)
        assert changes[2] == pytest.approx(4 * changes[0], rel=1e-6)

    def test_probes_every_position_by_default(self, weights):
        rep = FixedPointRepresentation(bits=8)
        points = weight_perturbation_by_bit(weights, rep, flip_fraction=0.5)
        assert [p.bit_position for p in points] == list(range(8))

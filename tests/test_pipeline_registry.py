"""Tests of the plugin registries (datasets, error models, policies, specs)."""

import pytest

from repro.core.mapping_policy import MAPPING_POLICIES
from repro.datasets import DATASETS, load_dataset
from repro.dram.specs import DRAM_SPECS, get_dram_spec
from repro.errors.models import ERROR_MODELS, ErrorModel0, make_error_model
from repro.registry import Registry, RegistryError


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("thing")
        reg.register("alpha", 1)
        assert reg.get("alpha") == 1
        assert "alpha" in reg
        assert reg.names() == ("alpha",)

    def test_decorator_form(self):
        reg = Registry("thing")

        @reg.register("fn")
        def fn():
            return 7

        assert reg.get("fn") is fn

    def test_aliases_and_normalisation(self):
        reg = Registry("thing")
        reg.register("my-name", "value", aliases=("other",))
        assert reg.get("MY_NAME") == "value"
        assert reg.get("other") == "value"
        assert reg.canonical_name("other") == "my-name"

    def test_unknown_name_lists_choices(self):
        reg = Registry("gadget")
        reg.register("a", 1)
        reg.register("b", 2)
        with pytest.raises(RegistryError, match=r"unknown gadget 'c'.*'a'.*'b'"):
            reg.get("c")

    def test_registry_error_is_value_error(self):
        assert issubclass(RegistryError, ValueError)

    def test_duplicate_rejected(self):
        reg = Registry("thing")
        reg.register("x", 1)
        with pytest.raises(RegistryError):
            reg.register("x", 2)
        reg.register("x", 2, overwrite=True)
        assert reg.get("x") == 2

    def test_overwrite_displaces_stale_alias(self):
        reg = Registry("thing")
        reg.register("a", 1, aliases=("b",))
        reg.register("b", 2, overwrite=True)
        assert reg.get("b") == 2
        assert reg.canonical_name("b") == "b"
        assert reg.get("a") == 1


class TestFrameworkRegistries:
    def test_datasets_registered(self):
        assert set(DATASETS.names()) >= {"mnist", "fashion"}
        dataset = load_dataset("fashion-mnist", 12, 8, seed=3)
        assert dataset.train_images.shape[0] == 12

    def test_unknown_dataset_raises_value_error(self):
        with pytest.raises(ValueError):
            load_dataset("imagenet", 10, 10)

    def test_error_models_registered(self):
        assert set(ERROR_MODELS.names()) == {
            "model0",
            "model1",
            "model2",
            "model3",
            "eden",
        }
        assert isinstance(make_error_model("model-0"), ErrorModel0)
        assert isinstance(make_error_model("uniform"), ErrorModel0)

    def test_eden_model_registered_with_aliases(self):
        from repro.errors.models import ErrorModelEden

        assert isinstance(make_error_model("eden"), ErrorModelEden)
        assert isinstance(ERROR_MODELS.get("model4")(), ErrorModelEden)

    def test_unknown_error_model_raises(self):
        with pytest.raises(ValueError):
            make_error_model("model9")

    def test_mapping_policies_registered(self):
        assert set(MAPPING_POLICIES.names()) == {"baseline", "sparkxd"}
        assert MAPPING_POLICIES.canonical_name("sparkxd-algorithm2") == "sparkxd"
        with pytest.raises(ValueError):
            MAPPING_POLICIES.get("random-scatter")

    def test_dram_specs_registered(self):
        assert "lpddr3-1600-4gb" in DRAM_SPECS.names()
        assert "ddr5-4800-8gb" in DRAM_SPECS.names()
        assert get_dram_spec("tiny").name == "tiny-test-dram"
        assert get_dram_spec("ddr5").name == "DDR5-4800 8Gb"
        with pytest.raises(ValueError):
            get_dram_spec("ddr6")

    def test_config_rejects_unknown_mapping_policy(self):
        from repro import SparkXDConfig

        with pytest.raises(ValueError):
            SparkXDConfig(mapping_policy="does-not-exist")

"""Experiment-service tests: multi-tenant sweeps, auth, journal isolation.

Three layers:

- **scheduling** (no sockets): tenant registry semantics, deterministic
  sweep ids, cancel, per-tenant journal isolation across a simulated
  SIGKILL + service restart (zero re-executions, no cross-tenant
  done-map bleed);
- **end-to-end** (real sockets, module-scoped): one service, two
  overlapping sweeps, a 2-worker fleet, records value-identical to the
  serial Runner; the control-plane HTTP API against the live service;
- **auth**: unauthenticated/mistokened requests rejected loudly on
  both planes.
"""

import threading

import pytest

from repro import SparkXDConfig
from repro.analysis.export import records_equivalent
from repro.cluster import (
    AuthError,
    ClusterClient,
    ExperimentService,
    ServiceAuthError,
    ServiceClient,
    ServiceError,
    WorkerAgent,
    sweep_identity,
)
from repro.pipeline import ArtifactStore, Runner
from repro.pipeline.runner import RunRecord

TINY = SparkXDConfig.small(
    n_train=40,
    n_test=25,
    n_neurons=12,
    n_steps=30,
    baseline_epochs=1,
    ber_rates=(1e-5, 1e-3),
    accuracy_bound=0.5,
)
GRID_A = {"voltages": [(1.325,), (1.025,)]}
#: Shares TINY's training chain but is a distinct sweep (its own id,
#: plan and journal) — the overlap exercises cross-tenant dedupe.
GRID_B = {"voltages": [(1.125,)]}
TOKEN = "sweep-secret"


def drain(plan, worker="w1", limit=500):
    """Drive a plan to completion without a pipeline (synthetic bytes)."""
    for _ in range(limit):
        job = plan.lease(worker)
        if job is None:
            assert plan.done
            return
        plan.store.put(job.stage, job.digest, f"artifact-{job.job_id}")
        assert plan.complete(worker, job.job_id)
    raise AssertionError("plan did not drain")


# ----------------------------------------------------------------------
class TestTenantRegistry:
    def test_sweep_identity_is_deterministic_and_grid_sensitive(self):
        assert sweep_identity(TINY, GRID_A) == sweep_identity(TINY, GRID_A)
        assert sweep_identity(TINY, GRID_A) != sweep_identity(TINY, GRID_B)
        other = TINY.with_overrides(seed=7)
        assert sweep_identity(TINY, GRID_A) != sweep_identity(other, GRID_A)

    def test_resubmission_reattaches(self):
        service = ExperimentService()
        first = service.submit(TINY, GRID_A)
        second = service.submit(TINY, GRID_A)
        assert first is second
        assert len(service.fleet()["sweeps"]) == 1

    def test_tenants_share_one_store_and_dedupe_training(self):
        service = ExperimentService()
        a = service.submit(TINY, GRID_A)
        drain(a.plan)
        # B's training chain is already cached by A: only the
        # dram-eval job for its own voltage remains.
        b = service.submit(TINY, GRID_B)
        assert [j.stage for j in b.plan.jobs.values()] == ["dram-eval"]

    def test_describe_reports_counts_and_state(self):
        service = ExperimentService()
        managed = service.submit(TINY, GRID_A, name="alpha")
        info = service.describe(managed.sweep_id)
        assert info["name"] == "alpha"
        assert info["state"] == "running"
        assert info["pending"] == len(managed.plan.jobs)
        drain(managed.plan)
        assert service.describe(managed.sweep_id)["state"] == "done"

    def test_unknown_sweep_raises_key_error(self):
        service = ExperimentService()
        with pytest.raises(KeyError):
            service.describe("nope")

    def test_cancel_frees_leases_and_stops_grants(self):
        service = ExperimentService()
        managed = service.submit(TINY, GRID_A)
        job = managed.plan.lease("w1")
        assert job is not None
        reply = service.cancel(managed.sweep_id)
        assert reply["state"] == "cancelled"
        assert reply["leases_freed"] == 1
        assert managed.plan.lease("w1") is None
        # results on a cancelled sweep is a client error, not a crash
        with pytest.raises(RuntimeError, match="cancelled"):
            service.results(managed.sweep_id)

    def test_results_before_done_is_an_error(self):
        service = ExperimentService()
        managed = service.submit(TINY, GRID_A)
        with pytest.raises(RuntimeError, match="not complete"):
            service.results(managed.sweep_id)


# ----------------------------------------------------------------------
class TestJournalIsolation:
    def _service(self, tmp_path, store):
        return ExperimentService(
            store=store, journal_dir=tmp_path / "journals"
        )

    def test_per_tenant_journal_files(self, tmp_path):
        service = self._service(tmp_path, ArtifactStore())
        a = service.submit(TINY, GRID_A)
        b = service.submit(TINY, GRID_B)
        assert a.journal.path.name == f"sweep-{a.sweep_id}.jsonl"
        assert b.journal.path.name == f"sweep-{b.sweep_id}.jsonl"
        assert a.journal.path != b.journal.path

    def test_kill_and_restart_replays_both_tenants(self, tmp_path):
        store = ArtifactStore()
        service = self._service(tmp_path, store)
        a = service.submit(TINY, GRID_A)
        b = service.submit(TINY, GRID_B)
        # Interleave the two tenants mid-flight: A fully drains, B
        # completes exactly one job and holds a live lease on another.
        drain(a.plan, worker="w1")
        job1 = b.plan.lease("w2")
        store.put(job1.stage, job1.digest, "artifact-b1")
        assert b.plan.complete("w2", job1.job_id)
        leased = b.plan.lease("w2")
        assert leased is not None
        b_done_before = b.plan.counts()["done"]
        # SIGKILL: the journal flushes per line, so dropping the
        # service without close() leaves exactly what a killed process
        # would have left on disk.
        del service, a

        restarted = self._service(tmp_path, store)
        a2 = restarted.submit(TINY, GRID_A)
        b2 = restarted.submit(TINY, GRID_B)
        # A replays straight to done: zero jobs to re-execute.
        assert a2.plan.done
        assert a2.plan.replayed_done == len(a2.plan.jobs)
        assert a2.plan.counts()["pending"] == 0
        # B replays its completed work; only genuinely unfinished jobs
        # (including the in-flight lease, which journaled no done)
        # come back as pending.
        assert b2.plan.replayed_done == b_done_before
        assert b2.plan.counts()["leased"] == 0
        assert b2.plan.counts()["done"] == b_done_before
        assert (
            b2.plan.counts()["pending"]
            == len(b2.plan.jobs) - b_done_before
        )
        drain(b2.plan, worker="w3")

    def test_no_cross_tenant_done_bleed(self, tmp_path):
        """A's journaled done set never leaks into B's plan (and vice
        versa): each journal replays only fingerprints of its own
        chain."""
        store = ArtifactStore()
        service = self._service(tmp_path, store)
        a = service.submit(TINY, GRID_A)
        b = service.submit(TINY, GRID_B)
        a_ids = set(a.plan.jobs)
        b_ids = set(b.plan.jobs)
        drain(a.plan, worker="w1")
        drain(b.plan, worker="w2")
        del service, a, b

        restarted = self._service(tmp_path, store)
        a2 = restarted.submit(TINY, GRID_A)
        b2 = restarted.submit(TINY, GRID_B)
        assert set(a2.plan.jobs) == a_ids
        assert set(b2.plan.jobs) == b_ids
        assert a2.plan.done and b2.plan.done
        # The shared-chain overlap dedupes through the *store*, not
        # through each other's journals: every replayed-done job id in
        # a tenant's plan belongs to that tenant's own chain.
        assert all(j in a_ids for j in a2.plan.jobs)
        assert all(j in b_ids for j in b2.plan.jobs)

    def test_journal_lag_reported_per_tenant(self, tmp_path):
        service = self._service(tmp_path, ArtifactStore())
        managed = service.submit(TINY, GRID_A, name="lagged")
        drain(managed.plan)
        info = service.describe(managed.sweep_id)
        # plan header + every lease/done transition, no snapshot yet
        assert info["journal"]["lag"] == info["journal"]["events"] > 0
        managed.journal.compact()
        assert service.describe(managed.sweep_id)["journal"]["lag"] == 0
        fleet = service.fleet()
        sweep_view = fleet["sweeps"][managed.sweep_id]
        assert sweep_view["journal"]["lag"] == 0
        assert sweep_view["name"] == "lagged"


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_records():
    store = ArtifactStore()
    records_a = Runner(TINY, store=store).run(GRID_A)
    records_b = Runner(TINY, store=ArtifactStore()).run(GRID_B)
    return records_a, records_b


@pytest.fixture(scope="module")
def live_service(serial_records):
    """One service, two overlapping sweeps, a real 2-worker fleet."""
    service = ExperimentService(token=TOKEN, shutdown_when_idle=False)
    service.start()
    client = ServiceClient(service.http_address, token=TOKEN)
    submitted_a = client.submit(TINY, GRID_A, name="alpha")
    submitted_b = client.submit(TINY, GRID_B, name="beta")
    workers = [
        WorkerAgent(service.worker_address, name=f"svc-w{i}", token=TOKEN)
        for i in range(2)
    ]
    threads = [
        threading.Thread(target=w.run_forever, daemon=True) for w in workers
    ]
    for thread in threads:
        thread.start()
    client.wait(submitted_a["sweep_id"], timeout=300)
    client.wait(submitted_b["sweep_id"], timeout=300)
    yield service, client, submitted_a["sweep_id"], submitted_b["sweep_id"]
    service.stop()


class TestServiceEndToEnd:
    def test_both_sweeps_value_identical_to_serial(
        self, live_service, serial_records
    ):
        _, client, sweep_a, sweep_b = live_service
        serial_a, serial_b = serial_records
        records_a = [
            RunRecord.from_dict(e)
            for e in client.results(sweep_a)["records"]
        ]
        records_b = [
            RunRecord.from_dict(e)
            for e in client.results(sweep_b)["records"]
        ]
        assert records_equivalent(records_a, serial_a)
        assert records_equivalent(records_b, serial_b)

    def test_fleet_view_has_both_tenants_and_workers(self, live_service):
        _, client, sweep_a, sweep_b = live_service
        fleet = client.fleet()
        assert fleet["sweeps"][sweep_a]["state"] == "done"
        assert fleet["sweeps"][sweep_b]["state"] == "done"
        assert fleet["sweeps"][sweep_a]["name"] == "alpha"
        assert len(fleet["workers"]) == 2

    def test_http_status_of_unknown_sweep_is_404(self, live_service):
        _, client, *_ = live_service
        with pytest.raises(ServiceError) as excinfo:
            client.status("doesnotexist")
        assert excinfo.value.status == 404

    def test_results_of_running_sweep_is_409(self, live_service):
        service, client, *_ = live_service
        managed = service.submit(TINY, {"seed": [7]}, name="fresh")
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.results(managed.sweep_id)
            assert excinfo.value.status == 409
        finally:
            service.cancel(managed.sweep_id)

    def test_cancel_over_http_frees_leases(self, live_service):
        service, client, *_ = live_service
        managed = service.submit(TINY, {"seed": [11]}, name="doomed")
        job = managed.plan.lease("interloper")
        assert job is not None
        reply = client.cancel(managed.sweep_id)
        assert reply["state"] == "cancelled"
        assert reply["leases_freed"] == 1
        assert managed.plan.lease("interloper") is None

    def test_line_status_includes_sweeps(self, live_service):
        service, _, sweep_a, _ = live_service
        reply = ClusterClient(service.worker_address, token=TOKEN).status()
        assert sweep_a in reply["sweeps"]

    def test_worker_exits_loudly_on_bad_token(self, live_service):
        service, *_ = live_service
        agent = WorkerAgent(
            service.worker_address, name="intruder", token="wrong-token"
        )
        stats = agent.run_forever()
        assert stats.jobs_done == 0
        assert any("authentication" in e for e in stats.errors)


class TestAuthRejection:
    def test_line_plane_rejects_missing_and_bad_token(self, live_service):
        service, *_ = live_service
        with pytest.raises(AuthError):
            ClusterClient(service.worker_address).request(
                {"op": "hello", "worker": "anon"}
            )
        with pytest.raises(AuthError):
            ClusterClient(service.worker_address, token="bad").request(
                {"op": "lease", "worker": "anon"}
            )

    def test_http_plane_rejects_unauthenticated_submit(self, live_service):
        service, *_ = live_service
        naked = ServiceClient(service.http_address)
        with pytest.raises(ServiceAuthError):
            naked.submit(TINY, GRID_B)
        with pytest.raises(ServiceAuthError):
            ServiceClient(service.http_address, token="bad").fleet()

    def test_tokenless_service_accepts_anonymous(self):
        service = ExperimentService()  # no token: auth disabled
        service.start()
        try:
            reply = ServiceClient(service.http_address).fleet()
            assert reply["sweeps"] == {}
        finally:
            service.stop()

"""Multi-chip / multi-channel organisation and mapping behaviour.

Algorithm 2's Step-4: "If some data still remains, it is mapped to
different chips, ranks, and channels respectively".  These tests run
the address arithmetic and both mapping policies on a module with more
than one chip, rank and channel.
"""

import numpy as np
import pytest

from repro.core.mapping_policy import baseline_mapping, sparkxd_mapping
from repro.dram.organization import DramOrganization
from repro.dram.specs import DramGeometry, DramSpec, ElectricalParameters, NominalTimings
from repro.errors.weak_cells import SubarrayErrorProfile


@pytest.fixture
def multi_spec():
    return DramSpec(
        name="multi-chip-test",
        geometry=DramGeometry(
            channels=2,
            ranks_per_channel=2,
            chips_per_rank=2,
            banks_per_chip=2,
            subarrays_per_bank=2,
            rows_per_subarray=2,
            columns_per_row=4,
            column_width_bits=32,
        ),
        timings=NominalTimings(),
        electrical=ElectricalParameters(),
    )


@pytest.fixture
def org(multi_spec):
    return DramOrganization(multi_spec)


class TestMultiChipOrganization:
    def test_total_slots_counts_all_levels(self, org):
        assert org.total_slots == 2 * 2 * 2 * 2 * 2 * 2 * 4

    def test_roundtrip_across_every_chip(self, org):
        for slot in range(org.total_slots):
            assert org.slot_of(org.coordinate_of(slot)) == slot

    def test_chip_boundary_in_flat_order(self, org):
        g = org.geometry
        per_chip = (
            g.banks_per_chip * g.subarrays_per_bank * g.rows_per_subarray * g.columns_per_row
        )
        last_of_chip0 = org.coordinate_of(per_chip - 1)
        first_of_chip1 = org.coordinate_of(per_chip)
        assert last_of_chip0.chip == 0
        assert first_of_chip1.chip == 1

    def test_subarray_indices_unique_across_chips(self, org):
        seen = set()
        for sid in org.iter_subarrays():
            index = org.subarray_index(sid)
            assert index not in seen
            seen.add(index)
        assert len(seen) == org.total_subarrays


class TestMultiChipMapping:
    def test_baseline_spills_across_chips(self, org):
        g = org.geometry
        per_chip_slots = (
            g.banks_per_chip * g.subarrays_per_bank * g.rows_per_subarray * g.columns_per_row
        )
        n_weights = per_chip_slots + 4  # one chip plus a remainder
        mapping = baseline_mapping(org, n_weights, bits_per_weight=32)
        chips = {c.chip for c in mapping.coordinates()}
        assert chips == {0, 1}

    def test_sparkxd_step4_moves_to_next_chip(self, org):
        # make every subarray of chip 0 (channel 0, rank 0) unsafe:
        # Algorithm 2 Step-4 must spill to the next chip.
        rates = np.zeros(org.total_subarrays)
        for index, sid in enumerate(org.iter_subarrays()):
            if sid.channel == 0 and sid.rank == 0 and sid.chip == 0:
                rates[index] = 0.5
        profile = SubarrayErrorProfile(
            organization=org, v_supply=1.1, device_ber=1e-3, rates=rates
        )
        mapping = sparkxd_mapping(org, n_weights=8, bits_per_weight=32,
                                  profile=profile, ber_threshold=1e-3)
        for coord in mapping.coordinates():
            assert (coord.channel, coord.rank, coord.chip) != (0, 0, 0)

    def test_sparkxd_fills_whole_module_when_needed(self, org):
        rates = np.zeros(org.total_subarrays)
        profile = SubarrayErrorProfile(
            organization=org, v_supply=1.1, device_ber=1e-3, rates=rates
        )
        n_weights = org.total_slots  # 32-bit weights, 1 per slot
        mapping = sparkxd_mapping(org, n_weights, 32, profile, 1e-3)
        assert len(np.unique(mapping.slot_of_chunk)) == org.total_slots
        channels = {c.channel for c in mapping.coordinates()}
        assert channels == {0, 1}

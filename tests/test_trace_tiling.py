"""Tests of the on-chip buffer / tiling model."""

import pytest

from repro.trace.tiling import (
    SCHEDULES,
    buffer_sweep,
    refetch_passes_for_buffer,
)


class TestWeightStationary:
    def test_fitting_tensor_streams_once(self):
        plan = refetch_passes_for_buffer(
            n_weights=1000, bits_per_weight=32, buffer_bits=64_000, n_timesteps=100
        )
        assert plan.fits_on_chip
        assert plan.refetch_passes == 1
        assert plan.total_traffic_bits == 32_000

    def test_oversized_tensor_restreams(self):
        plan = refetch_passes_for_buffer(
            n_weights=1000, bits_per_weight=32, buffer_bits=8_000, n_timesteps=100
        )
        assert not plan.fits_on_chip
        assert plan.refetch_passes == 4  # ceil(32000 / 8000)
        assert plan.total_traffic_bits == 4 * 32_000

    def test_passes_capped_by_timesteps(self):
        plan = refetch_passes_for_buffer(
            n_weights=1000, bits_per_weight=32, buffer_bits=100, n_timesteps=5
        )
        assert plan.refetch_passes == 5

    def test_traffic_monotone_in_buffer_size(self):
        plans = buffer_sweep(
            n_weights=10_000, bits_per_weight=32,
            buffer_sizes_bits=(1_000, 10_000, 100_000, 10_000_000),
            n_timesteps=100,
        )
        traffic = [p.total_traffic_bits for p in plans]
        assert all(a >= b for a, b in zip(traffic, traffic[1:]))


class TestOutputStationary:
    def test_always_one_pass(self):
        plan = refetch_passes_for_buffer(
            n_weights=10_000, bits_per_weight=32, buffer_bits=100,
            n_timesteps=100, schedule="output-stationary",
        )
        assert plan.refetch_passes == 1

    def test_beats_weight_stationary_for_tiny_buffers(self):
        kwargs = dict(
            n_weights=10_000, bits_per_weight=32, buffer_bits=1_000, n_timesteps=50
        )
        ws = refetch_passes_for_buffer(schedule="weight-stationary", **kwargs)
        os_ = refetch_passes_for_buffer(schedule="output-stationary", **kwargs)
        assert os_.total_traffic_bits < ws.total_traffic_bits


class TestPlanConversion:
    def test_to_trace_spec(self):
        plan = refetch_passes_for_buffer(
            n_weights=64, bits_per_weight=32, buffer_bits=1024, n_timesteps=10
        )
        spec = plan.to_trace_spec()
        assert spec.n_weights == 64
        assert spec.refetch_passes == plan.refetch_passes


class TestValidation:
    def test_schedules_listed(self):
        assert SCHEDULES == ("weight-stationary", "output-stationary")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_weights": 0},
            {"bits_per_weight": 0},
            {"buffer_bits": 0},
            {"n_timesteps": 0},
            {"schedule": "nope"},
        ],
    )
    def test_invalid_inputs_rejected(self, kwargs):
        base = dict(
            n_weights=100, bits_per_weight=32, buffer_bits=1000, n_timesteps=10
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            refetch_passes_for_buffer(**base)

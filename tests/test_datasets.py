"""Tests of the synthetic workloads."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    Dataset,
    load_dataset,
    load_synthetic_fashion,
    load_synthetic_mnist,
)
from repro.datasets.base import N_PIXELS, augment, build_dataset, render_glyph
from repro.datasets.synthetic_fashion import CLASS_NAMES, fashion_prototypes
from repro.datasets.synthetic_mnist import digit_bitmap, digit_prototypes


class TestShapesAndRanges:
    @pytest.mark.parametrize("loader", [load_synthetic_mnist, load_synthetic_fashion])
    def test_shapes(self, loader):
        ds = loader(n_train=40, n_test=20, seed=1)
        assert ds.train_images.shape == (40, N_PIXELS)
        assert ds.test_images.shape == (20, N_PIXELS)
        assert ds.train_labels.shape == (40,)
        assert ds.train_images.dtype == np.float32

    def test_pixel_range(self):
        ds = load_synthetic_mnist(30, 10, seed=2)
        assert ds.train_images.min() >= 0.0
        assert ds.train_images.max() <= 1.0

    def test_labels_cover_ten_classes(self):
        ds = load_synthetic_mnist(100, 50, seed=3)
        assert set(ds.train_labels.tolist()) == set(range(10))

    def test_classes_balanced(self):
        ds = load_synthetic_mnist(100, 50, seed=3)
        counts = np.bincount(ds.train_labels, minlength=10)
        assert counts.max() - counts.min() <= 1


class TestDeterminismAndSplits:
    def test_same_seed_same_data(self):
        a = load_synthetic_mnist(20, 10, seed=5)
        b = load_synthetic_mnist(20, 10, seed=5)
        assert np.array_equal(a.train_images, b.train_images)
        assert np.array_equal(a.test_labels, b.test_labels)

    def test_different_seed_different_data(self):
        a = load_synthetic_mnist(20, 10, seed=5)
        b = load_synthetic_mnist(20, 10, seed=6)
        assert not np.array_equal(a.train_images, b.train_images)

    def test_train_and_test_disjoint(self):
        ds = load_synthetic_mnist(30, 30, seed=4)
        train_set = {img.tobytes() for img in ds.train_images}
        overlap = sum(img.tobytes() in train_set for img in ds.test_images)
        assert overlap == 0

    def test_subset(self):
        ds = load_synthetic_mnist(30, 20, seed=1)
        sub = ds.subset(10, 5)
        assert sub.n_train == 10 and sub.n_test == 5
        assert np.array_equal(sub.train_images, ds.train_images[:10])

    def test_subset_too_large_rejected(self):
        ds = load_synthetic_mnist(10, 5, seed=1)
        with pytest.raises(ValueError):
            ds.subset(11, 5)


class TestClassStructure:
    def test_prototypes_distinct(self):
        protos = digit_prototypes().reshape(10, -1)
        # all pairwise distances comfortably above zero
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.linalg.norm(protos[i] - protos[j]) > 0.5

    def test_fashion_prototypes_distinct(self):
        protos = fashion_prototypes().reshape(10, -1)
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.linalg.norm(protos[i] - protos[j]) > 0.3

    def test_same_class_closer_than_other_class(self):
        # Nearest-prototype structure must be learnable.
        ds = load_synthetic_mnist(200, 10, seed=0)
        protos = digit_prototypes().reshape(10, -1)
        correct = 0
        for image, label in zip(ds.train_images, ds.train_labels):
            nearest = np.argmin(np.linalg.norm(protos - image, axis=1))
            correct += nearest == label
        assert correct / len(ds.train_labels) > 0.8

    def test_digit_bitmap_validation(self):
        with pytest.raises(ValueError):
            digit_bitmap(10)

    def test_fashion_class_names(self):
        assert len(CLASS_NAMES) == 10


class TestPipelineHelpers:
    def test_render_glyph_shape(self):
        img = render_glyph(np.ones((7, 5)))
        assert img.shape == (28, 28)
        assert img.max() > 0

    def test_render_glyph_too_large(self):
        with pytest.raises(ValueError):
            render_glyph(np.ones((10, 10)), upscale=4)

    def test_augment_output_contract(self, rng):
        proto = render_glyph(np.ones((7, 5)))
        sample = augment(proto, rng)
        assert sample.shape == (N_PIXELS,)
        assert sample.dtype == np.float32
        assert 0.0 <= sample.min() and sample.max() <= 1.0

    def test_build_dataset_validation(self):
        protos = digit_prototypes()
        with pytest.raises(ValueError):
            build_dataset("x", protos[:5], 10, 5, 0)
        with pytest.raises(ValueError):
            build_dataset("x", protos, 0, 5, 0)

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            Dataset(
                name="bad",
                train_images=np.zeros((2, 3), dtype=np.float32),
                train_labels=np.zeros(2, dtype=np.int64),
                test_images=np.zeros((1, N_PIXELS), dtype=np.float32),
                test_labels=np.zeros(1, dtype=np.int64),
            )


class TestLoader:
    def test_names(self):
        assert DATASET_NAMES == ("mnist", "fashion")

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("mnist", "synthetic-mnist"),
            ("MNIST", "synthetic-mnist"),
            ("fashion-mnist", "synthetic-fashion"),
            ("synthetic-fashion", "synthetic-fashion"),
        ],
    )
    def test_aliases(self, alias, expected):
        assert load_dataset(alias, 10, 5).name == expected

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("cifar", 10, 5)

"""The ``repro lint`` CLI: check/baseline/json/rules/report flags."""

import json
from pathlib import Path

from repro.cli import build_parser, main

FIXTURES = Path(__file__).parent / "lint_fixtures"
RNG_TREE = str(FIXTURES / "rng_tree")


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.command == "lint"
        assert args.root is None
        assert not args.check

    def test_flags(self):
        args = build_parser().parse_args(
            ["lint", "--root", "src", "--check", "--json",
             "--rules", "rng-discipline", "--baseline", "b.json"]
        )
        assert args.root == "src"
        assert args.check and args.json
        assert args.rules == ["rng-discipline"]


class TestLintCommand:
    def test_check_fails_on_fixture_tree(self, capsys):
        assert main(["lint", "--root", RNG_TREE, "--check"]) == 1
        out = capsys.readouterr().out
        assert "rng-discipline" in out

    def test_default_mode_reports_without_gating(self, capsys):
        assert main(["lint", "--root", RNG_TREE]) == 0
        assert "finding(s)" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(["lint", "--root", RNG_TREE, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts_by_rule"]["rng-discipline"] == 4
        assert payload["suppressed"] == 1

    def test_source_tree_is_clean(self, capsys):
        assert main(["lint", "--check"]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_rules_filter(self, capsys):
        assert main(
            ["lint", "--root", RNG_TREE, "--check",
             "--rules", "lock-discipline"]
        ) == 0  # the rng fixture is clean under the lock rule

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--rules", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_report_file(self, tmp_path, capsys):
        report_path = tmp_path / "LINT_report.json"
        assert main(
            ["lint", "--root", RNG_TREE, "--report", str(report_path)]
        ) == 0
        payload = json.loads(report_path.read_text())
        assert payload["total"] == 4

    def test_update_baseline_then_check_passes(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", "--root", RNG_TREE, "--update-baseline",
             "--baseline", str(baseline)]
        ) == 0
        assert main(
            ["lint", "--root", RNG_TREE, "--check",
             "--baseline", str(baseline)]
        ) == 0
        out = capsys.readouterr().out
        assert "(baselined)" in out

    def test_default_baseline_discovered_in_cwd(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--root", RNG_TREE, "--update-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").is_file()
        # No --baseline flag: the cwd file is picked up automatically.
        assert main(["lint", "--root", RNG_TREE, "--check"]) == 0

"""Tests of the trace-based STDP rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn.stdp import STDPParameters, STDPRule, normalize_columns


@pytest.fixture
def rule():
    return STDPRule(n_pre=4, parameters=STDPParameters(learning_rate=0.1))


class TestParameters:
    def test_defaults_valid(self):
        STDPParameters().validate()

    @pytest.mark.parametrize(
        "kwargs", [{"learning_rate": 0}, {"tau_trace_ms": 0}, {"w_max": 0}, {"mu": -1}]
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            STDPParameters(**kwargs).validate()


class TestTraces:
    def test_trace_jumps_on_pre_spike(self, rule):
        weights = np.full((4, 2), 0.5)
        rule.step(weights, np.array([1, 0, 0, 0], dtype=bool), np.zeros(2, dtype=bool))
        assert rule.x_pre[0] == 1.0
        assert np.all(rule.x_pre[1:] == 0.0)

    def test_trace_decays(self, rule):
        weights = np.full((4, 2), 0.5)
        pre = np.array([1, 0, 0, 0], dtype=bool)
        none = np.zeros(4, dtype=bool)
        rule.step(weights, pre, np.zeros(2, dtype=bool))
        rule.step(weights, none, np.zeros(2, dtype=bool))
        assert 0 < rule.x_pre[0] < 1.0

    def test_reset_clears_traces(self, rule):
        rule.x_pre[:] = 0.7
        rule.reset_state()
        assert np.all(rule.x_pre == 0.0)


class TestUpdates:
    def test_no_post_spike_no_update(self, rule):
        weights = np.full((4, 2), 0.5)
        before = weights.copy()
        rule.step(weights, np.ones(4, dtype=bool), np.zeros(2, dtype=bool))
        assert np.array_equal(weights, before)

    def test_recently_active_inputs_potentiated(self, rule):
        weights = np.full((4, 2), 0.5)
        pre = np.array([1, 0, 0, 0], dtype=bool)
        post = np.array([1, 0], dtype=bool)
        rule.step(weights, pre, post)
        assert weights[0, 0] > 0.5  # active input to firing neuron: LTP

    def test_silent_inputs_depressed(self, rule):
        weights = np.full((4, 2), 0.5)
        pre = np.array([1, 0, 0, 0], dtype=bool)
        post = np.array([1, 0], dtype=bool)
        rule.step(weights, pre, post)
        assert weights[1, 0] < 0.5  # silent input to firing neuron: LTD

    def test_non_firing_neuron_unchanged(self, rule):
        weights = np.full((4, 2), 0.5)
        pre = np.array([1, 0, 0, 0], dtype=bool)
        post = np.array([1, 0], dtype=bool)
        rule.step(weights, pre, post)
        assert np.all(weights[:, 1] == 0.5)

    def test_soft_bound_slows_growth_near_wmax(self):
        params = STDPParameters(learning_rate=0.1, w_max=1.0, mu=1.0)
        rule = STDPRule(2, params)
        weights = np.array([[0.5, 0.95], [0.5, 0.95]])
        pre = np.ones(2, dtype=bool)
        post = np.array([True, True])
        before = weights.copy()
        rule.step(weights, pre, post)
        growth_mid = weights[0, 0] - before[0, 0]
        growth_high = weights[0, 1] - before[0, 1]
        assert growth_high < growth_mid

    def test_shape_validation(self, rule):
        with pytest.raises(ValueError):
            rule.step(np.ones((3, 2)), np.zeros(3, dtype=bool), np.zeros(2, dtype=bool))

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        steps=st.integers(min_value=1, max_value=20),
    )
    def test_weights_always_within_bounds_property(self, seed, steps):
        # Invariant the DRAM storage representation relies on.
        rng = np.random.default_rng(seed)
        params = STDPParameters(learning_rate=0.5, w_max=1.0)
        rule = STDPRule(6, params)
        weights = rng.random((6, 3))
        for _ in range(steps):
            pre = rng.random(6) < 0.5
            post = rng.random(3) < 0.5
            rule.step(weights, pre, post)
            assert np.all(weights >= 0.0)
            assert np.all(weights <= params.w_max)


class TestNormalization:
    def test_columns_scaled_to_target(self):
        weights = np.array([[1.0, 2.0], [3.0, 6.0]])
        normalize_columns(weights, target_sum=2.0)
        assert np.allclose(weights.sum(axis=0), 2.0)

    def test_zero_column_left_alone(self):
        weights = np.array([[0.0, 1.0], [0.0, 1.0]])
        normalize_columns(weights, target_sum=2.0)
        assert np.all(weights[:, 0] == 0.0)
        assert weights[:, 1].sum() == pytest.approx(2.0)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            normalize_columns(np.ones((2, 2)), 0.0)


class TestBatchedSTDP:
    def test_batched_update_matches_scalar_per_element(self):
        rng = np.random.default_rng(4)
        n_pre, n_post, B = 6, 5, 3
        weights = rng.random((B, n_pre, n_post)) * 0.5
        pre = rng.random((B, n_pre)) < 0.5
        post = rng.random((B, n_post)) < 0.5
        batched = STDPRule(n_pre, batch_shape=(B,))
        batched_w = weights.copy()
        batched.step(batched_w, pre, post)
        for b in range(B):
            scalar = STDPRule(n_pre)
            scalar_w = weights[b].copy()
            scalar.step(scalar_w, pre[b], post[b])
            assert np.allclose(batched_w[b], scalar_w)
            assert np.array_equal(batched.x_pre[b], scalar.x_pre)

    def test_batched_weight_shape_validated(self):
        rule = STDPRule(6, batch_shape=(2,))
        with pytest.raises(ValueError):
            rule.step(np.zeros((6, 5)), np.zeros((2, 6), bool), np.zeros((2, 5), bool))

    def test_set_batch_shape_resets_trace(self):
        rule = STDPRule(4)
        rule.x_pre[:] = 1.0
        rule.set_batch_shape((3,))
        assert rule.x_pre.shape == (3, 4)
        assert not rule.x_pre.any()

"""Tests of the fused minibatch STDP kernel (repro.snn.kernels).

The load-bearing property: every kernel backend — the unfused
``"reference"`` loop, the fused ``"numpy"`` kernel, and (when numba is
installed) the jitted ``"numba"`` kernel — produces **bit-identical**
results: same accumulated delta, same adaptive thresholds, same spike
counts, same presynaptic traces, same trained weights.  The fused path
is a pure reordering into preallocated workspace buffers, not an
approximation, so these are ``array_equal`` assertions, not
``allclose``.
"""

import numpy as np
import pytest

from repro.engine.trainer import BatchedTrainer, StageEncodingCache
from repro.snn.kernels import (
    FusedWorkspace,
    HAVE_NUMBA,
    KERNEL_CHOICES,
    default_kernel,
    resolve_kernel,
)
from repro.snn.network import DiehlCookNetwork, NetworkParameters, make_stdp

PARAMS = NetworkParameters(n_input=64, n_neurons=16)

#: Fused backends available in this environment (the numba leg of CI
#: adds "numba"; the default numpy-only leg tests the fallback).
BACKENDS = ["numpy"] + (["numba"] if HAVE_NUMBA else [])


def _network(dtype=np.float64, seed=1):
    return DiehlCookNetwork(PARAMS, rng=np.random.default_rng(seed), dtype=dtype)


def _workload(n_samples=12, seed=3):
    rng = np.random.default_rng(seed)
    return rng.random((n_samples, PARAMS.n_input))


def _gaussian_corrupter(seed):
    rng = np.random.default_rng(seed)

    def corrupt(weights):
        return np.clip(weights + rng.normal(0.0, 0.01, weights.shape), 0.0, 1.0)

    return corrupt


def _batched_setup(dtype, n_batch=5, n_steps=30, seed=2):
    """A batched shell + rule + encoded trains + frozen weights."""
    rng = np.random.default_rng(seed)
    shell = DiehlCookNetwork(
        PARAMS, batch_shape=(n_batch,), init_weights=False, dtype=dtype
    )
    weights = (rng.random((PARAMS.n_input, PARAMS.n_neurons)) * 0.3).astype(dtype)
    shell.set_weights(weights)
    shell.neurons.theta = (
        rng.random(shell.neurons.state_shape) * 0.1
    ).astype(dtype)
    trains = rng.random((n_batch, n_steps, PARAMS.n_input)) < 0.15
    return shell, trains


def _run_kernel(shell, trains, kernel, dtype):
    """One run_batch_stdp pass; returns every observable output."""
    stdp = make_stdp(shell, batch_shape=shell.batch_shape)
    delta = np.zeros((PARAMS.n_input, PARAMS.n_neurons), dtype=dtype)
    theta0 = shell.neurons.theta.copy()
    counts = shell.run_batch_stdp(trains, stdp, delta, kernel=kernel)
    outputs = {
        "delta": delta,
        "counts": counts,
        "theta": shell.neurons.theta.copy(),
        "x_pre": stdp.x_pre.copy(),
        "last": shell._last_spikes.copy(),
    }
    shell.neurons.theta = theta0  # restore for the next backend
    shell.reset_state()
    return outputs


class TestKernelResolution:
    def test_choices_and_default(self):
        assert set(KERNEL_CHOICES) == {"auto", "numba", "numpy", "reference"}
        assert default_kernel() == ("numba" if HAVE_NUMBA else "numpy")
        assert resolve_kernel("auto") == default_kernel()
        assert resolve_kernel("numpy") == "numpy"
        assert resolve_kernel("reference") == "reference"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernel("fortran")
        with pytest.raises(ValueError):
            BatchedTrainer(_network(), kernel="fortran")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_explicit_numba_without_numba_raises(self):
        with pytest.raises(RuntimeError):
            resolve_kernel("numba")


class TestFusedWorkspace:
    def test_matches(self):
        ws = FusedWorkspace(4, 16, 64, np.float64)
        assert ws.matches(4, 16, 64, np.dtype(np.float64))
        assert not ws.matches(5, 16, 64, np.dtype(np.float64))
        assert not ws.matches(4, 16, 64, np.dtype(np.float32))


class TestFusedBitIdentity:
    """Fused backends == the unfused reference loop, bit for bit."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_batch_stdp_matches_reference(self, dtype, backend):
        shell, trains = _batched_setup(dtype)
        ref = _run_kernel(shell, trains, "reference", dtype)
        got = _run_kernel(shell, trains, backend, dtype)
        for key in ref:
            assert np.array_equal(ref[key], got[key]), (backend, key)
        assert got["counts"].sum() > 0  # the comparison is not vacuous

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_workspace_reuse_does_not_change_results(self, backend):
        """Passing a dirty, reused workspace is bit-identical to none."""
        shell, trains = _batched_setup(np.float64)
        stdp = make_stdp(shell, batch_shape=shell.batch_shape)
        ws = FusedWorkspace(5, PARAMS.n_neurons, PARAMS.n_input, np.float64)
        theta0 = shell.neurons.theta.copy()
        delta_ws = np.zeros((PARAMS.n_input, PARAMS.n_neurons))
        shell.run_batch_stdp(trains, stdp, delta_ws, kernel=backend, workspace=ws)
        shell.reset_state()
        stdp.reset_state()
        shell.neurons.theta = theta0.copy()
        delta_again = np.zeros((PARAMS.n_input, PARAMS.n_neurons))
        shell.run_batch_stdp(
            trains, stdp, delta_again, kernel=backend, workspace=ws
        )
        assert np.array_equal(delta_ws, delta_again)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("corrupt", [False, True])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trained_weights_match_across_kernels(self, dtype, corrupt, backend):
        """Full minibatch training is kernel-invariant end to end."""
        images = _workload()
        nets, rngs = {}, {}
        for kernel in ("reference", backend):
            net = _network(dtype)
            rng = np.random.default_rng(7)
            hook = _gaussian_corrupter(5) if corrupt else None
            BatchedTrainer(
                net, batch_size=5, corrupt_weights=hook, kernel=kernel
            ).train(images, n_steps=30, epochs=2, rng=rng)
            nets[kernel], rngs[kernel] = net, rng
        assert np.array_equal(
            nets["reference"].weights, nets[backend].weights
        )
        assert np.array_equal(
            nets["reference"].neurons.theta, nets[backend].neurons.theta
        )
        assert (
            rngs["reference"].bit_generator.state
            == rngs[backend].bit_generator.state
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_size_one_unaffected_by_kernel(self, backend):
        """batch_size=1 is the sequential reference under every kernel."""
        images = _workload()
        net_ref, net_k = _network(), _network()
        rng_ref, rng_k = np.random.default_rng(7), np.random.default_rng(7)
        BatchedTrainer(net_ref, batch_size=1, kernel="reference").train(
            images, n_steps=25, rng=rng_ref
        )
        BatchedTrainer(net_k, batch_size=1, kernel=backend).train(
            images, n_steps=25, rng=rng_k
        )
        assert np.array_equal(net_ref.weights, net_k.weights)
        assert rng_ref.bit_generator.state == rng_k.bit_generator.state


class TestWorkspaceReuseAcrossMinibatches:
    def test_ragged_to_full_round_trips_allocate_once_per_size(
        self, monkeypatch
    ):
        """The satellite regression: a ragged final minibatch must not
        evict the full-size machinery — across epochs, exactly one
        workspace (and shell) is built per distinct minibatch size."""
        import repro.engine.trainer as trainer_mod

        built = []
        real_workspace = trainer_mod.FusedWorkspace

        def counting_workspace(*args, **kwargs):
            built.append(args[:1])
            return real_workspace(*args, **kwargs)

        monkeypatch.setattr(trainer_mod, "FusedWorkspace", counting_workspace)
        images = _workload(n_samples=7)  # batches of 3: sizes 3, 3, 1
        trainer = BatchedTrainer(_network(), batch_size=3)
        trainer.train(images, n_steps=20, epochs=3, rng=np.random.default_rng(7))
        assert len(built) == 2  # one per distinct size, NOT per epoch
        assert set(trainer._machinery) == {3, 1}

    def test_machinery_objects_stable_across_epochs(self):
        trainer = BatchedTrainer(_network(), batch_size=3)
        images = _workload(n_samples=7)
        trainer.train(images, n_steps=20, epochs=1, rng=np.random.default_rng(7))
        first = {k: tuple(map(id, v)) for k, v in trainer._machinery.items()}
        trainer.train(images, n_steps=20, epochs=2, rng=np.random.default_rng(8))
        second = {k: tuple(map(id, v)) for k, v in trainer._machinery.items()}
        assert first == second

    def test_ragged_matches_uncached_results(self):
        """Machinery reuse is invisible in the results: two epochs via
        one trainer == two fresh single-epoch trainers chained."""
        images = _workload(n_samples=7)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        net_a, net_b = _network(), _network()
        BatchedTrainer(net_a, batch_size=3).train(
            images, n_steps=20, epochs=2, rng=rng_a
        )
        for _ in range(2):  # fresh trainer (fresh machinery) per epoch
            BatchedTrainer(net_b, batch_size=3).train(
                images, n_steps=20, epochs=1, rng=rng_b
            )
        assert np.array_equal(net_a.weights, net_b.weights)
        assert np.array_equal(net_a.neurons.theta, net_b.neurons.theta)


class TestStageEncodingCache:
    def test_recording_pass_is_bit_identical_to_uncached(self):
        images = _workload()
        net_a, net_b = _network(), _network()
        cache = StageEncodingCache()
        BatchedTrainer(net_a, batch_size=4).train(
            images, n_steps=25, epochs=2, rng=np.random.default_rng(5),
            encoding_cache=cache,
        )
        BatchedTrainer(net_b, batch_size=4).train(
            images, n_steps=25, epochs=2, rng=np.random.default_rng(5)
        )
        assert len(cache) == 2
        assert cache.n_bytes > 0
        assert np.array_equal(net_a.weights, net_b.weights)

    def test_replay_is_deterministic_and_skips_rng(self):
        images = _workload()
        cache = StageEncodingCache()
        net0 = _network()
        BatchedTrainer(net0, batch_size=4).train(
            images, n_steps=25, rng=np.random.default_rng(5),
            encoding_cache=cache,
        )
        results = []
        for seed in (11, 99):  # replay ignores the generator entirely
            net = _network()
            rng = np.random.default_rng(seed)
            state0 = rng.bit_generator.state
            BatchedTrainer(net, batch_size=4).train(
                images, n_steps=25, rng=rng, encoding_cache=cache
            )
            assert rng.bit_generator.state == state0
            results.append(net.weights)
        assert np.array_equal(results[0], results[1])

    def test_batch_size_one_rejected(self):
        with pytest.raises(ValueError):
            BatchedTrainer(_network(), batch_size=1).train(
                _workload(), n_steps=10, rng=np.random.default_rng(0),
                encoding_cache=StageEncodingCache(),
            )

    def test_epochs_recorded_in_order(self):
        cache = StageEncodingCache()
        with pytest.raises(ValueError):
            cache.record_epoch(1, [])
        cache.record_epoch(0, [])
        assert cache.has_epoch(0) and not cache.has_epoch(1)

    def test_fault_aware_shared_encoding_end_to_end(self):
        from repro.core.fault_aware_training import (
            improve_error_tolerance,
            train_baseline,
        )
        from repro.datasets import load_dataset
        from repro.errors.injection import ErrorInjector
        from repro.snn.quantization import Float32Representation

        dataset = load_dataset("mnist", 30, 20, seed=7)
        baseline = train_baseline(
            dataset, n_neurons=15, epochs=1, n_steps=30,
            rng=np.random.default_rng(11), batch_size=4,
        )
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=3)
        result = improve_error_tolerance(
            baseline, dataset, injector, rates=(1e-5, 1e-3),
            epochs_per_rate=2, n_steps=30, rng=np.random.default_rng(5),
            batch_size=4, stage_encoding="shared",
        )
        assert set(result.accuracy_per_rate) == {1e-5, 1e-3}
        assert np.all(result.model.weights >= 0.0)

    def test_fault_aware_validates_stage_encoding(self):
        from repro.core.fault_aware_training import improve_error_tolerance

        with pytest.raises(ValueError, match="stage_encoding"):
            improve_error_tolerance(
                None, None, None, stage_encoding="cached"
            )
        with pytest.raises(ValueError, match="batch_size"):
            improve_error_tolerance(
                None, None, None, stage_encoding="shared", batch_size=1
            )

    def test_config_validates_stage_encoding(self):
        from repro.core.config import SparkXDConfig

        cfg = SparkXDConfig(stage_encoding="shared", train_batch_size=4)
        assert cfg.stage_encoding == "shared"
        with pytest.raises(ValueError):
            SparkXDConfig(stage_encoding="shared")  # batch_size 1
        with pytest.raises(ValueError):
            SparkXDConfig(stage_encoding="cached")


class TestBaseWeightsDriveSharing:
    """run_batch(base_weights=...) — the exact ΔW drive-correction path."""

    def _stack(self, base, n_real, flips, seed, dtype):
        """Corrupt ``flips`` weight entries per realization."""
        rng = np.random.default_rng(seed)
        stack = np.broadcast_to(base, (n_real,) + base.shape).copy()
        for e in range(n_real):
            rows = rng.integers(0, base.shape[0], size=flips)
            cols = rng.integers(0, base.shape[1], size=flips)
            stack[e, rows, cols] = rng.random(flips).astype(dtype)
        return stack

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("flips", [0, 1, 3, 500])
    def test_counts_bit_identical(self, dtype, flips):
        """Sparse delta corrections == full per-realization drives, at
        low BER (CSR row-recompute path) and high (full-matmul cutoff)."""
        rng = np.random.default_rng(4)
        base = (rng.random((PARAMS.n_input, PARAMS.n_neurons)) * 0.3).astype(dtype)
        stack = self._stack(base, n_real=3, flips=flips, seed=9, dtype=dtype)
        # One shared (B, n_steps, n_input) train set presented to all
        # E=3 realizations of the stack.
        trains = rng.random((4, 25, PARAMS.n_input)) < 0.2

        def counts(base_weights):
            net = DiehlCookNetwork(
                PARAMS, batch_shape=(3, 4), init_weights=False, dtype=dtype
            )
            net.set_weights(stack)
            return net.run_batch(trains, adapt=False, base_weights=base_weights)

        assert np.array_equal(counts(None), counts(base))

    def test_evaluator_accuracies_bit_identical(self):
        from repro.engine import BatchedEvaluator

        rng = np.random.default_rng(4)
        base = rng.random((PARAMS.n_input, PARAMS.n_neurons)) * 0.3
        stack = self._stack(base, n_real=4, flips=2, seed=9, dtype=np.float64)
        images = _workload(n_samples=8)
        labels = np.arange(8) % 4
        assignments = np.arange(PARAMS.n_neurons) % 4
        evaluator = BatchedEvaluator(PARAMS)

        def accs(base_weights):
            return evaluator.accuracies(
                images, labels, assignments, 20, np.random.default_rng(3),
                weights=stack, n_classes=4, base_weights=base_weights,
            )

        assert np.array_equal(accs(None), accs(base))

    def test_base_weights_shape_validated(self):
        from repro.engine import BatchedEvaluator

        evaluator = BatchedEvaluator(PARAMS)
        stack = np.zeros((2, PARAMS.n_input, PARAMS.n_neurons))
        with pytest.raises(ValueError):
            evaluator.spike_counts(
                _workload(4), 10, np.random.default_rng(0), stack,
                base_weights=np.zeros((3, 3)),
            )

"""Tests of the DRAM mapping policies (Algorithm 2 and the baseline)."""

import numpy as np
import pytest

from repro.core.mapping_policy import (
    InsufficientSafeCapacityError,
    baseline_mapping,
    sparkxd_mapping,
)
from repro.dram.organization import DramOrganization
from repro.dram.specs import tiny_spec
from repro.errors.weak_cells import SubarrayErrorProfile


@pytest.fixture
def org():
    return DramOrganization(tiny_spec())


def profile_with_rates(org, rates):
    return SubarrayErrorProfile(
        organization=org,
        v_supply=1.1,
        device_ber=float(np.mean(rates)),
        rates=np.asarray(rates, dtype=float),
    )


class TestBaselineMapping:
    def test_sequential_slots(self, org):
        mapping = baseline_mapping(org, n_weights=16, bits_per_weight=32)
        assert np.array_equal(mapping.slot_of_chunk, np.arange(16))
        assert mapping.policy == "baseline-sequential"

    def test_capacity_guard(self, org):
        too_many = org.total_slots * org.slot_bits // 32 + 1
        with pytest.raises(InsufficientSafeCapacityError):
            baseline_mapping(org, n_weights=too_many, bits_per_weight=32)

    def test_weights_per_chunk(self, org):
        mapping = baseline_mapping(org, n_weights=16, bits_per_weight=8)
        assert mapping.weights_per_chunk == org.slot_bits // 8

    def test_subarray_of_weight(self, org):
        per_subarray = org.slots_per_subarray()
        n_weights = per_subarray + 4  # spills into the second subarray
        mapping = baseline_mapping(org, n_weights=n_weights, bits_per_weight=32)
        subarrays = mapping.subarray_of_weight()
        assert subarrays.shape == (n_weights,)
        assert subarrays[0] == 0
        assert subarrays[-1] == 1
        assert set(mapping.subarrays_used()) == {0, 1}

    def test_validation(self, org):
        with pytest.raises(ValueError):
            baseline_mapping(org, n_weights=0, bits_per_weight=32)


class TestSparkXDMapping:
    def test_all_safe_uses_bank_rotation(self, org):
        # Algorithm 2 loop order: row -> subarray -> bank -> column.
        # With everything safe, the first row of subarray 0 is filled in
        # bank 0 then bank 1 before any second row is touched.
        g = org.geometry
        rates = np.zeros(org.total_subarrays)
        mapping = sparkxd_mapping(
            org, n_weights=2 * g.columns_per_row, bits_per_weight=32,
            profile=profile_with_rates(org, rates), ber_threshold=1e-3,
        )
        coords = list(mapping.coordinates())
        first_row = coords[: g.columns_per_row]
        second_row = coords[g.columns_per_row :]
        assert all(c.bank == 0 and c.row == 0 and c.subarray == 0 for c in first_row)
        assert all(c.bank == 1 and c.row == 0 and c.subarray == 0 for c in second_row)
        assert [c.column for c in first_row] == list(range(g.columns_per_row))

    def test_unsafe_subarrays_skipped(self, org):
        rates = np.zeros(org.total_subarrays)
        rates[0] = 0.5  # subarray 0 (bank 0) unsafe
        mapping = sparkxd_mapping(
            org, n_weights=8, bits_per_weight=32,
            profile=profile_with_rates(org, rates), ber_threshold=1e-3,
        )
        assert 0 not in mapping.subarrays_used()

    def test_threshold_boundary_is_inclusive(self, org):
        # Algorithm 2 line 7: subarray_rate <= BER_th is safe.
        rates = np.full(org.total_subarrays, 1e-3)
        mapping = sparkxd_mapping(
            org, n_weights=4, bits_per_weight=32,
            profile=profile_with_rates(org, rates), ber_threshold=1e-3,
        )
        assert mapping.n_chunks == 4

    def test_insufficient_safe_capacity_raises(self, org):
        rates = np.full(org.total_subarrays, 0.5)
        rates[0] = 0.0  # only one safe subarray
        too_big = org.slots_per_subarray() * (org.slot_bits // 32) + 1
        with pytest.raises(InsufficientSafeCapacityError, match="safe subarrays"):
            sparkxd_mapping(
                org, n_weights=too_big, bits_per_weight=32,
                profile=profile_with_rates(org, rates), ber_threshold=1e-3,
            )

    def test_exactly_fitting_capacity_succeeds(self, org):
        rates = np.full(org.total_subarrays, 0.5)
        rates[0] = 0.0
        exactly = org.slots_per_subarray() * (org.slot_bits // 32)
        mapping = sparkxd_mapping(
            org, n_weights=exactly, bits_per_weight=32,
            profile=profile_with_rates(org, rates), ber_threshold=1e-3,
        )
        assert mapping.subarrays_used().tolist() == [0]

    def test_no_duplicate_slots(self, org):
        rates = np.zeros(org.total_subarrays)
        n = org.total_slots // 2
        mapping = sparkxd_mapping(
            org, n_weights=n, bits_per_weight=32,
            profile=profile_with_rates(org, rates), ber_threshold=1.0,
        )
        assert len(np.unique(mapping.slot_of_chunk)) == mapping.n_chunks

    def test_mapped_weights_only_in_safe_subarrays(self, org):
        rng = np.random.default_rng(0)
        rates = rng.uniform(0, 1e-2, org.total_subarrays)
        threshold = float(np.median(rates))
        mapping = sparkxd_mapping(
            org, n_weights=16, bits_per_weight=32,
            profile=profile_with_rates(org, rates), ber_threshold=threshold,
        )
        used = mapping.subarrays_used()
        assert np.all(rates[used] <= threshold)

    def test_geometry_mismatch_rejected(self, org):
        other = DramOrganization(tiny_spec().scaled(rows_per_subarray=8))
        rates = np.zeros(other.total_subarrays)
        with pytest.raises(ValueError, match="geometry"):
            sparkxd_mapping(
                org, n_weights=4, bits_per_weight=32,
                profile=profile_with_rates(other, rates), ber_threshold=1.0,
            )


class TestWeightMappingInvariants:
    def test_chunk_count_validated(self, org):
        from repro.core.mapping_policy import WeightMapping

        with pytest.raises(ValueError):
            WeightMapping(
                organization=org,
                slot_of_chunk=np.arange(3),
                bits_per_weight=32,
                n_weights=16,
                policy="bad",
            )

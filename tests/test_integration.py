"""Integration tests across modules: the flows the framework composes."""

import numpy as np
import pytest

from repro.core.mapping_policy import baseline_mapping, sparkxd_mapping
from repro.dram.controller import DramController
from repro.dram.specs import LPDDR3_1600_4GB, tiny_spec
from repro.errors.injection import ErrorInjector
from repro.errors.weak_cells import WeakCellMap
from repro.snn.network import DiehlCookNetwork, NetworkParameters
from repro.snn.quantization import Float32Representation
from repro.snn.training import evaluate_accuracy, train_unsupervised
from repro.trace.generator import InferenceTraceSpec, inference_read_trace


class TestMappingToTraceToEnergy:
    """Mapping policy -> trace -> controller: the Fig. 12 pipeline."""

    def test_sparkxd_beats_baseline_energy_at_reduced_voltage(self):
        controller = DramController(LPDDR3_1600_4GB)
        org = controller.organization
        n_weights = 784 * 100
        spec = InferenceTraceSpec(n_weights=n_weights, bits_per_weight=32)

        base_map = baseline_mapping(org, n_weights, 32)
        base = controller.execute(
            inference_read_trace(spec, base_map.slot_of_chunk, org), 1.35
        )

        profile = WeakCellMap(org, sigma=0.8, seed=0).profile_at(1.025)
        xd_map = sparkxd_mapping(org, n_weights, 32, profile, ber_threshold=1e-3)
        reduced = controller.execute(
            inference_read_trace(spec, xd_map.slot_of_chunk, org), 1.025
        )

        saving = 1 - reduced.energy.total_nj / base.energy.total_nj
        # The paper's headline: ~40% DRAM energy saving at 1.025 V.
        assert saving == pytest.approx(0.40, abs=0.05)

    def test_sparkxd_maintains_throughput(self):
        # Fig. 12(b): ~1.02x speed-up despite derated timings.
        controller = DramController(LPDDR3_1600_4GB)
        org = controller.organization
        n_weights = 784 * 100
        spec = InferenceTraceSpec(n_weights=n_weights, bits_per_weight=32)
        base_map = baseline_mapping(org, n_weights, 32)
        base = controller.execute(
            inference_read_trace(spec, base_map.slot_of_chunk, org), 1.35
        )
        profile = WeakCellMap(org, sigma=0.8, seed=0).profile_at(1.025)
        xd_map = sparkxd_mapping(org, n_weights, 32, profile, 1e-3)
        reduced = controller.execute(
            inference_read_trace(spec, xd_map.slot_of_chunk, org), 1.025
        )
        speedup = base.stats.total_time_ns / reduced.stats.total_time_ns
        assert speedup >= 0.98  # maintains throughput

    def test_both_mappings_are_hit_dominated(self):
        # Both the baseline (sequential) and SparkXD (Algorithm 2)
        # mappings maximise row-buffer hits.
        controller = DramController(tiny_spec())
        org = controller.organization
        n_weights = 64
        spec = InferenceTraceSpec(n_weights=n_weights, bits_per_weight=32)
        base_map = baseline_mapping(org, n_weights, 32)
        base = controller.execute(
            inference_read_trace(spec, base_map.slot_of_chunk, org), 1.35
        )
        profile = WeakCellMap(org, sigma=0.0, seed=0).profile_at(1.1)
        xd_map = sparkxd_mapping(org, n_weights, 32, profile, 1.0)
        xd = controller.execute(
            inference_read_trace(spec, xd_map.slot_of_chunk, org), 1.1
        )
        assert base.stats.hit_rate > 0.8
        assert xd.stats.hit_rate > 0.8


class TestInjectionThroughMapping:
    """Mapping -> per-subarray rates -> injection: the accuracy pipeline."""

    def test_weights_in_safe_subarrays_see_lower_error_rates(self):
        org = DramController(tiny_spec()).organization
        n_weights = 64
        profile_rates = np.zeros(org.total_subarrays)
        profile_rates[:2] = 0.5  # subarrays 0-1 are terrible
        from repro.errors.weak_cells import SubarrayErrorProfile

        profile = SubarrayErrorProfile(
            organization=org, v_supply=1.1, device_ber=0.1, rates=profile_rates
        )
        xd_map = sparkxd_mapping(org, n_weights, 32, profile, ber_threshold=1e-3)
        base_map = baseline_mapping(org, n_weights, 32)

        injector = ErrorInjector(Float32Representation(sanitize=False), seed=0)
        weights = np.random.default_rng(0).random(n_weights).astype(np.float32)

        _, xd_report = injector.inject_by_region(
            weights, xd_map.subarray_of_weight(), profile_rates,
            rng=np.random.default_rng(1),
        )
        _, base_report = injector.inject_by_region(
            weights, base_map.subarray_of_weight(), profile_rates,
            rng=np.random.default_rng(1),
        )
        # SparkXD placed everything in clean subarrays; the baseline
        # streamed into the bad ones.
        assert xd_report.flipped_bits == 0
        assert base_report.flipped_bits > 0


class TestTrainingUnderInjection:
    """SNN training + error injector: the Fig. 11 pipeline."""

    @pytest.mark.slow
    def test_high_ber_hurts_untrained_model(self, mini_mnist):
        rng = np.random.default_rng(3)
        net = DiehlCookNetwork(NetworkParameters(n_neurons=40), rng=rng)
        model = train_unsupervised(
            net, mini_mnist.train_images, mini_mnist.train_labels,
            n_steps=60, rng=rng,
        )
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=5)
        clean_acc = evaluate_accuracy(
            net, mini_mnist.test_images, mini_mnist.test_labels,
            model.assignments, 60, rng,
        )
        corrupted, _ = injector.inject_uniform(model.weights, 0.05)
        net.set_weights(corrupted)
        noisy_acc = evaluate_accuracy(
            net, mini_mnist.test_images, mini_mnist.test_labels,
            model.assignments, 60, rng,
        )
        # At a catastrophic BER the receptive fields are destroyed.
        assert noisy_acc < clean_acc

"""Tests of the row-buffer state machine and cycle accounting."""

import pytest

from repro.dram.commands import AccessCondition, CommandKind
from repro.dram.organization import DramOrganization
from repro.dram.row_buffer import RowBufferSimulator
from repro.dram.specs import tiny_spec
from repro.dram.timing import timing_for_voltage


@pytest.fixture
def org():
    return DramOrganization(tiny_spec())


@pytest.fixture
def sim(org):
    timing = timing_for_voltage(org.spec, 1.35)
    return RowBufferSimulator(org, timing)


def coords(org, *slots):
    return [org.coordinate_of(s) for s in slots]


class TestClassification:
    def test_first_access_is_miss(self, sim, org):
        assert sim.access(org.coordinate_of(0)) is AccessCondition.MISS

    def test_same_row_access_is_hit(self, sim, org):
        sim.access(org.coordinate_of(0))
        assert sim.access(org.coordinate_of(1)) is AccessCondition.HIT

    def test_other_row_same_bank_is_conflict(self, sim, org):
        g = org.geometry
        sim.access(org.coordinate_of(0))
        other_row = org.coordinate_of(g.columns_per_row)  # row 1, same bank
        assert sim.access(other_row) is AccessCondition.CONFLICT

    def test_other_bank_first_access_is_miss(self, sim, org):
        g = org.geometry
        sim.access(org.coordinate_of(0))
        per_bank = g.subarrays_per_bank * g.rows_per_subarray * g.columns_per_row
        other_bank = org.coordinate_of(per_bank)
        assert other_bank.bank != 0 or other_bank.chip != 0
        assert sim.access(other_bank) is AccessCondition.MISS

    def test_classify_does_not_mutate(self, sim, org):
        c = org.coordinate_of(0)
        assert sim.classify(c) is AccessCondition.MISS
        assert sim.classify(c) is AccessCondition.MISS  # still a miss
        sim.access(c)
        assert sim.classify(c) is AccessCondition.HIT


class TestCommandCounts:
    def test_hit_issues_only_rd(self, sim, org):
        sim.access(org.coordinate_of(0))
        sim.access(org.coordinate_of(1))
        assert sim.stats.command_counts[CommandKind.RD] == 2
        assert sim.stats.command_counts[CommandKind.ACT] == 1
        assert sim.stats.command_counts[CommandKind.PRE] == 0

    def test_conflict_issues_pre_act_rd(self, sim, org):
        g = org.geometry
        sim.access(org.coordinate_of(0))
        sim.access(org.coordinate_of(g.columns_per_row))
        assert sim.stats.command_counts[CommandKind.PRE] == 1
        assert sim.stats.command_counts[CommandKind.ACT] == 2
        assert sim.stats.command_counts[CommandKind.RD] == 2

    def test_stats_accumulate(self, sim, org):
        stats = sim.run(coords(org, 0, 1, 2, 8, 0))
        assert stats.accesses == 5
        assert stats.hits + stats.misses + stats.conflicts == 5


class TestTiming:
    def test_sequential_hits_limited_by_bus(self, org):
        timing = timing_for_voltage(org.spec, 1.35)
        sim = RowBufferSimulator(org, timing)
        n = org.geometry.columns_per_row
        stats = sim.run(coords(org, *range(n)))
        # After the first ACT+tRCD, hits stream back-to-back on the bus.
        expected_min = timing.t_rcd_ns + n * timing.burst_time_ns
        assert stats.total_time_ns == pytest.approx(expected_min, rel=0.01)

    def test_same_bank_conflict_pays_full_latency(self, org):
        timing = timing_for_voltage(org.spec, 1.35)
        sim = RowBufferSimulator(org, timing)
        g = org.geometry
        sim.access(org.coordinate_of(0))
        sim.access(org.coordinate_of(g.columns_per_row))  # same-bank conflict
        # From t=0: the PRE waits out tRAS, then tRP and tRCD gate the
        # second RD, which still needs its burst on the bus.
        lower_bound = (
            timing.t_ras_ns + timing.t_rp_ns + timing.t_rcd_ns + timing.burst_time_ns
        )
        assert sim.stats.total_time_ns >= lower_bound * 0.99

    def test_open_ahead_hides_other_bank_activation(self, org):
        """The multi-bank burst (Fig. 9b): rotating banks hides ACT."""
        timing = timing_for_voltage(org.spec, 1.35)
        g = org.geometry
        per_bank = g.subarrays_per_bank * g.rows_per_subarray * g.columns_per_row
        # alternate banks every row worth of columns
        trace = []
        for row in range(2):
            for bank in range(g.banks_per_chip):
                base = bank * per_bank + row * g.columns_per_row
                trace.extend(range(base, base + g.columns_per_row))

        sim_ahead = RowBufferSimulator(org, timing, open_ahead=True)
        ahead = sim_ahead.run(coords(org, *trace)).total_time_ns
        sim_lazy = RowBufferSimulator(org, timing, open_ahead=False)
        lazy = sim_lazy.run(coords(org, *trace)).total_time_ns
        assert ahead < lazy

    def test_derated_timing_slows_misses(self, org):
        g = org.geometry
        trace = coords(org, 0, g.columns_per_row, 2 * g.columns_per_row)
        nominal = RowBufferSimulator(org, timing_for_voltage(org.spec, 1.35))
        reduced = RowBufferSimulator(org, timing_for_voltage(org.spec, 1.025))
        t_nominal = nominal.run(list(trace)).total_time_ns
        t_reduced = reduced.run(list(trace)).total_time_ns
        assert t_reduced > t_nominal


class TestFinishAccounting:
    def test_active_time_counted(self, sim, org):
        sim.access(org.coordinate_of(0))
        stats = sim.finish()
        assert stats.bank_active_time_ns > 0
        assert stats.banks_touched == 1

    def test_idle_time_nonnegative(self, sim, org):
        g = org.geometry
        per_bank = g.subarrays_per_bank * g.rows_per_subarray * g.columns_per_row
        sim.access(org.coordinate_of(0))
        sim.access(org.coordinate_of(per_bank))
        stats = sim.finish()
        assert stats.idle_time_ns >= 0
        assert stats.banks_touched == 2

    def test_hit_rate(self, sim, org):
        stats = sim.run(coords(org, 0, 1, 2, 3))
        assert stats.hit_rate == pytest.approx(3 / 4)

    def test_empty_trace(self, sim):
        stats = sim.run([])
        assert stats.accesses == 0
        assert stats.hit_rate == 0.0
        assert stats.total_time_ns == 0.0

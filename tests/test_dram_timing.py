"""Tests of voltage-dependent timing parameters."""

import pytest

from repro.dram.specs import LPDDR3_1600_4GB
from repro.dram.timing import TimingParameters, timing_for_voltage
from repro.dram.voltage import ArrayVoltageModel


class TestTimingForVoltage:
    def test_nominal_voltage_returns_nominal_timings(self):
        t = timing_for_voltage(LPDDR3_1600_4GB, 1.35)
        nominal = LPDDR3_1600_4GB.timings
        assert t.t_rcd_ns == pytest.approx(nominal.t_rcd_ns)
        assert t.t_ras_ns == pytest.approx(nominal.t_ras_ns)
        assert t.t_rp_ns == pytest.approx(nominal.t_rp_ns)

    def test_reduced_voltage_derates_row_timings(self):
        t = timing_for_voltage(LPDDR3_1600_4GB, 1.025)
        nominal = LPDDR3_1600_4GB.timings
        assert t.t_rcd_ns > nominal.t_rcd_ns
        assert t.t_ras_ns > nominal.t_ras_ns
        assert t.t_rp_ns > nominal.t_rp_ns

    def test_interface_timings_unchanged(self):
        # The I/O clock and CAS latency run from a separate rail.
        t = timing_for_voltage(LPDDR3_1600_4GB, 1.025)
        nominal = LPDDR3_1600_4GB.timings
        assert t.clock_ns == pytest.approx(nominal.clock_ns)
        assert t.t_cl_ns == pytest.approx(nominal.t_cl_ns)
        assert t.burst_length == nominal.burst_length

    def test_derating_is_consistent_across_parameters(self):
        t = timing_for_voltage(LPDDR3_1600_4GB, 1.1)
        nominal = LPDDR3_1600_4GB.timings
        ratio_rcd = t.t_rcd_ns / nominal.t_rcd_ns
        ratio_ras = t.t_ras_ns / nominal.t_ras_ns
        ratio_rp = t.t_rp_ns / nominal.t_rp_ns
        assert ratio_rcd == pytest.approx(ratio_ras) == pytest.approx(ratio_rp)

    def test_custom_voltage_model_used(self):
        aggressive = ArrayVoltageModel(drive_exponent=4.0)
        gentle = ArrayVoltageModel(drive_exponent=1.0)
        t_fast = timing_for_voltage(LPDDR3_1600_4GB, 1.1, gentle)
        t_slow = timing_for_voltage(LPDDR3_1600_4GB, 1.1, aggressive)
        assert t_slow.t_rcd_ns > t_fast.t_rcd_ns


class TestTimingParameters:
    def test_row_cycle_time(self):
        t = TimingParameters(
            v_supply=1.35, clock_ns=1.25, t_rcd_ns=18, t_ras_ns=42,
            t_rp_ns=18, t_cl_ns=15, burst_length=8,
        )
        assert t.t_rc_ns == pytest.approx(60)

    def test_burst_time_is_ddr(self):
        t = TimingParameters(
            v_supply=1.35, clock_ns=1.25, t_rcd_ns=18, t_ras_ns=42,
            t_rp_ns=18, t_cl_ns=15, burst_length=8,
        )
        # 8 beats at 2 beats per 1.25ns cycle -> 5 ns.
        assert t.burst_time_ns == pytest.approx(5.0)

    def test_cycles_rounds_up(self):
        t = TimingParameters(
            v_supply=1.35, clock_ns=1.25, t_rcd_ns=18, t_ras_ns=42,
            t_rp_ns=18, t_cl_ns=15, burst_length=8,
        )
        assert t.cycles(0.0) == 0
        assert t.cycles(1.25) == 1
        assert t.cycles(1.3) == 2

    def test_cycles_rejects_negative(self):
        t = TimingParameters(
            v_supply=1.35, clock_ns=1.25, t_rcd_ns=18, t_ras_ns=42,
            t_rp_ns=18, t_cl_ns=15, burst_length=8,
        )
        with pytest.raises(ValueError):
            t.cycles(-1.0)

"""Unit tests of the cluster scheduling state machine (no sockets).

Time is injected, so lease expiry, exclusion and retry exhaustion are
exercised deterministically without sleeping.
"""

import pytest

from repro import SparkXDConfig
from repro.cluster.plan import PlanFailed, SweepPlan
from repro.pipeline import ArtifactStore, default_stages

CONFIG = SparkXDConfig.small()


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_plan(grid=None, store=None, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("lease_timeout", 10.0)
    plan = SweepPlan(
        CONFIG, grid or {}, store if store is not None else ArtifactStore(),
        clock=clock, **kwargs,
    )
    return plan, clock


def finish(plan, job, worker="w"):
    """Deposit the target artifact and complete the job."""
    plan.store.put(job.stage, job.digest, f"artifact-{job.job_id}")
    assert plan.complete(worker, job.job_id)


class TestPlanConstruction:
    def test_single_point_builds_full_chain(self):
        plan, _ = make_plan({})
        stages = [job.stage for job in plan.jobs.values()]
        assert sorted(stages) == sorted(
            s.name for s in default_stages()
        )

    def test_training_jobs_dedupe_across_dram_points(self):
        plan, _ = make_plan({"voltages": [(1.325,), (1.025,)]})
        by_stage = {}
        for job in plan.jobs.values():
            by_stage.setdefault(job.stage, []).append(job)
        # one shared training chain, one dram-eval job per grid point
        assert len(by_stage["train-baseline"]) == 1
        assert len(by_stage["fault-aware-train"]) == 1
        assert len(by_stage["tolerance-analysis"]) == 1
        assert len(by_stage["dram-eval"]) == 2

    def test_each_seed_gets_its_own_chain(self):
        plan, _ = make_plan({"seed": [1, 2]})
        stages = [job.stage for job in plan.jobs.values()]
        assert stages.count("train-baseline") == 2

    def test_cached_artifacts_need_no_job(self):
        store = ArtifactStore()
        chain = default_stages()
        for stage in chain[:-1]:
            store.put(stage.name, stage.cache_key(CONFIG), "cached")
        plan, _ = make_plan({}, store=store)
        assert [job.stage for job in plan.jobs.values()] == ["dram-eval"]
        (job,) = plan.jobs.values()
        assert not job.deps  # upstream artifacts exist, nothing to wait on

    def test_fully_cached_plan_is_done_immediately(self):
        store = ArtifactStore()
        for stage in default_stages():
            store.put(stage.name, stage.cache_key(CONFIG), "cached")
        plan, _ = make_plan({}, store=store)
        assert plan.done

    def test_validation(self):
        with pytest.raises(ValueError):
            make_plan({}, lease_timeout=0.0)
        with pytest.raises(ValueError):
            make_plan({}, max_attempts=0)


class TestLeasing:
    def test_dependency_order(self):
        plan, _ = make_plan({})
        first = plan.lease("w1")
        assert first.stage == "train-baseline"
        # The rest of the chain is blocked on it.
        assert plan.lease("w2") is None
        finish(plan, first, "w1")
        assert plan.lease("w2").stage == "fault-aware-train"

    def test_chain_progression_to_done(self):
        plan, _ = make_plan({})
        for _ in range(len(plan.jobs)):
            job = plan.lease("w")
            assert job is not None
            finish(plan, job)
        assert plan.done
        assert plan.lease("w") is None

    def test_heartbeat_extends_lease(self):
        plan, clock = make_plan({})
        job = plan.lease("w")
        clock.advance(8.0)
        assert plan.heartbeat("w", job.job_id)
        clock.advance(8.0)  # 16s total, but renewed at t=8
        assert plan.expire_leases() == []
        assert plan.jobs[job.job_id].state == "leased"

    def test_heartbeat_from_non_holder_is_rejected(self):
        plan, _ = make_plan({})
        job = plan.lease("w1")
        assert not plan.heartbeat("w2", job.job_id)
        assert not plan.heartbeat("w1", "no-such-job")


class TestLeaseExpiry:
    def test_expiry_requeues_with_exclusion(self):
        plan, clock = make_plan({})
        job = plan.lease("dying")
        clock.advance(10.1)
        assert plan.expire_leases() == [job.job_id]
        requeued = plan.jobs[job.job_id]
        assert requeued.state == "pending"
        assert "dying" in requeued.excluded

    def test_excluded_worker_skipped_when_peer_is_live(self):
        plan, clock = make_plan({})
        job = plan.lease("dying")
        plan.lease("healthy")  # registers as live (gets nothing: blocked)
        clock.advance(10.1)
        plan.expire_leases()
        # The excluded worker cannot reclaim it while a healthy peer is
        # around...
        assert plan.lease("dying") is None
        # ...and the healthy peer picks it up.
        retaken = plan.lease("healthy")
        assert retaken is not None
        assert retaken.job_id == job.job_id
        assert retaken.worker == "healthy"

    def test_exclusion_relaxes_when_it_would_deadlock(self):
        plan, clock = make_plan({})
        job = plan.lease("only-worker")
        clock.advance(10.1)
        plan.expire_leases()
        # Sole worker of the cluster: exclusion must not starve the job.
        retaken = plan.lease("only-worker")
        assert retaken is not None and retaken.job_id == job.job_id

    def test_bounded_retries_fail_the_plan(self):
        plan, clock = make_plan({}, max_attempts=2)
        for attempt in range(2):
            job = plan.lease(f"w{attempt}")
            assert job is not None
            clock.advance(10.1)
            plan.expire_leases()
        assert plan.failed
        assert job.job_id in plan.failure
        with pytest.raises(PlanFailed):
            plan.raise_on_failure()
        assert plan.lease("w-late") is None


class TestCompletion:
    def test_duplicate_completion_is_idempotent(self):
        plan, _ = make_plan({})
        job = plan.lease("w1")
        finish(plan, job, "w1")
        # Same worker again, and a worker that never held the lease:
        assert plan.complete("w1", job.job_id)
        assert plan.complete("w2", job.job_id)
        assert plan.jobs[job.job_id].state == "done"
        # Stats are kept from the first completion only.
        assert plan.jobs[job.job_id].stats["worker"] == "w1"

    def test_expired_holder_completion_still_counts(self):
        plan, clock = make_plan({})
        job = plan.lease("slow")
        clock.advance(10.1)
        plan.expire_leases()
        # The slow worker finished anyway and pushed the artifact.
        finish(plan, job, "slow")
        assert plan.jobs[job.job_id].state == "done"

    def test_completion_without_artifact_requeues(self):
        plan, _ = make_plan({})
        job = plan.lease("liar")
        assert not plan.complete("liar", job.job_id)  # nothing pushed
        requeued = plan.jobs[job.job_id]
        assert requeued.state == "pending"
        assert "liar" in requeued.excluded

    def test_unknown_job_completion_is_rejected(self):
        plan, _ = make_plan({})
        assert not plan.complete("w", "bogus:job")

    def test_stale_artifactless_completion_spares_current_holder(self):
        plan, clock = make_plan({})
        job = plan.lease("slow")
        clock.advance(10.1)
        plan.expire_leases()
        retaken = plan.lease("current")
        assert retaken.job_id == job.job_id
        # The ex-holder reports completion but its artifact never
        # arrived (e.g. pruned from a shared store): the current
        # holder's live lease must survive, exactly like fail().
        assert not plan.complete("slow", job.job_id)
        assert plan.jobs[job.job_id].state == "leased"
        assert plan.jobs[job.job_id].worker == "current"

    def test_fail_requeues_with_exclusion(self):
        plan, _ = make_plan({})
        job = plan.lease("crashy")
        plan.fail("crashy", job.job_id, "boom")
        requeued = plan.jobs[job.job_id]
        assert requeued.state == "pending"
        assert "crashy" in requeued.excluded
        assert requeued.error == "boom"

    def test_stale_fail_report_is_ignored(self):
        plan, clock = make_plan({})
        job = plan.lease("w1")
        clock.advance(10.1)
        plan.expire_leases()
        retaken = plan.lease("w2")
        assert retaken.job_id == job.job_id
        plan.fail("w1", job.job_id, "late report")  # w1 no longer holds it
        assert plan.jobs[job.job_id].state == "leased"
        assert plan.jobs[job.job_id].worker == "w2"


class TestWorkerSlots:
    def test_slots_are_stable_first_contact_order(self):
        plan, _ = make_plan({})
        assert plan.worker_slot("a") == 0
        assert plan.worker_slot("b") == 1
        assert plan.worker_slot("a") == 0


class _PrefixCollidingStage:
    """Stage whose fingerprints share a 16-hex-char prefix per seed."""

    name = "collide"

    def cache_key(self, config) -> str:
        return "a" * 16 + f"{config.seed:048x}"


class TestJobKeyCollisions:
    def test_shared_16_char_prefix_builds_distinct_jobs(self, monkeypatch):
        """Regression: jobs were keyed by digest[:16], silently aliasing
        distinct fingerprints onto one job — the second config's
        artifact was never computed."""
        monkeypatch.setattr(
            "repro.cluster.plan.default_stages",
            lambda: (_PrefixCollidingStage(),),
        )
        plan, _ = make_plan({"seed": [1, 2]})
        digests = sorted(job.digest for job in plan.jobs.values())
        assert len(digests) == 2  # one job per fingerprint, not per prefix
        assert digests[0] != digests[1]
        assert digests[0][:16] == digests[1][:16]  # the collision is real
        # Both jobs are independently leasable and completable.
        first = plan.lease("w")
        second = plan.lease("w")
        assert {first.digest, second.digest} == set(digests)
        finish(plan, first)
        finish(plan, second)
        assert plan.done

    def test_job_id_uses_full_digest(self):
        plan, _ = make_plan({})
        for job in plan.jobs.values():
            assert job.job_id == f"{job.stage}:{job.digest}"
            assert len(job.digest) == 64  # sha256 hex, untruncated
            assert job.short_id == f"{job.stage}:{job.digest[:16]}"
            assert plan.job_for(job.stage, job.digest) is job


class TestWorkerAges:
    def test_ages_track_last_contact(self):
        plan, clock = make_plan({})
        plan.lease("w1")
        clock.advance(5.0)
        plan.lease("w2")
        clock.advance(2.0)
        ages = plan.worker_ages()
        assert ages["w1"] == pytest.approx(7.0)
        assert ages["w2"] == pytest.approx(2.0)


class TestAffinity:
    """Affinity-aware leasing: held upstream artifacts steer grants."""

    GRID = {"seed": [1, 2], "voltages": [(1.325,), (1.175,), (1.025,)]}

    def _drain_training(self, plan):
        """Complete both training chains; returns per-seed upstream keys.

        Completion is holder-agnostic, so the 6 training jobs (3 stages
        x 2 seeds) are finished directly — leaving every dram-eval job
        ready at once, the affinity-relevant state.
        """
        training = sorted(
            (j for j in plan.jobs.values() if j.stage != "dram-eval"),
            key=lambda j: j.depth,
        )
        assert len(training) == 6
        for job in training:
            finish(plan, job, "w-train")
        upstream = {}
        for job in plan.jobs.values():
            if job.stage == "dram-eval":
                upstream.setdefault(job.config.seed, list(job.upstream))
        return upstream

    def test_holding_upstream_wins_over_creation_order(self):
        plan, _ = make_plan(self.GRID)
        upstream = self._drain_training(plan)
        seeds = sorted(upstream)
        later = seeds[1]  # its dram jobs come AFTER seed[0]'s in order
        job = plan.lease("w2", holding=upstream[later])
        assert job.stage == "dram-eval"
        assert job.config.seed == later  # affinity beat creation order

    def test_no_holdings_falls_back_to_creation_order(self):
        plan, _ = make_plan(self.GRID)
        upstream = self._drain_training(plan)
        first_seed = sorted(upstream)[0]
        job = plan.lease("w2")  # nothing reported
        assert job.config.seed == first_seed

    def test_affinity_disabled_ignores_holdings(self):
        plan, _ = make_plan(self.GRID, affinity=False)
        upstream = self._drain_training(plan)
        seeds = sorted(upstream)
        job = plan.lease("w2", holding=upstream[seeds[1]])
        assert job.config.seed == seeds[0]  # plain creation order

    def test_upstream_keys_cover_the_chain_prefix(self):
        plan, _ = make_plan({})
        by_depth = sorted(plan.jobs.values(), key=lambda j: j.depth)
        for i, job in enumerate(by_depth):
            assert len(job.upstream) == i
            for (stage_name, digest), dep_job in zip(job.upstream, by_depth):
                assert (stage_name, digest) == (dep_job.stage, dep_job.digest)


class TestJournal:
    def _journal(self, tmp_path, resume=True):
        from repro.cluster.journal import SweepJournal

        return SweepJournal(tmp_path / "journal.jsonl", resume=resume)

    def test_done_jobs_replay_without_re_lease(self, tmp_path):
        store = ArtifactStore()
        journal = self._journal(tmp_path)
        plan, _ = make_plan({}, store=store, journal=journal)
        first = plan.lease("w1")
        finish(plan, first, "w1")
        journal.close()

        # "Crash": rebuild from the same journal + store.
        resumed, _ = make_plan({}, store=store, journal=self._journal(tmp_path))
        replayed = resumed.jobs[first.job_id]
        assert replayed.state == "done"
        assert replayed.attempts == 0  # never re-leased
        assert replayed.worker == "w1"
        assert replayed.stats["worker"] == "w1"
        assert resumed.replayed_done == 1
        # The next lease continues the chain, not the done job.
        next_job = resumed.lease("w2")
        assert next_job.job_id != first.job_id
        assert first.job_id in next_job.deps

    def test_done_without_artifact_is_not_replayed(self, tmp_path):
        store = ArtifactStore()
        journal = self._journal(tmp_path)
        plan, _ = make_plan({}, store=store, journal=journal)
        job = plan.lease("w1")
        finish(plan, job, "w1")
        journal.close()

        # The artifact vanished (fresh in-memory store): the job must
        # run again — the store, not the journal, owns the bytes.
        resumed, _ = make_plan(
            {}, store=ArtifactStore(), journal=self._journal(tmp_path)
        )
        assert resumed.jobs[job.job_id].state == "pending"
        assert resumed.replayed_done == 0
        assert resumed.lease("w2").job_id == job.job_id

    def test_journal_of_a_different_sweep_is_refused(self, tmp_path):
        from repro.cluster.journal import JournalMismatch

        journal = self._journal(tmp_path)
        plan, _ = make_plan({}, journal=journal)
        journal.close()
        with pytest.raises(JournalMismatch):
            make_plan({"seed": [1, 2]}, journal=self._journal(tmp_path))

    def test_existing_journal_requires_resume(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append({"event": "plan"})
        journal.close()
        with pytest.raises(ValueError, match="resume"):
            self._journal(tmp_path, resume=False)

    def test_truncated_tail_line_is_tolerated(self, tmp_path):
        store = ArtifactStore()
        journal = self._journal(tmp_path)
        plan, _ = make_plan({}, store=store, journal=journal)
        first = plan.lease("w1")
        finish(plan, first, "w1")
        second = plan.lease("w1")
        finish(plan, second, "w1")
        journal.close()

        # Simulate a crash mid-write: chop the final line in half.
        path = tmp_path / "journal.jsonl"
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])

        journal2 = self._journal(tmp_path)
        resumed, _ = make_plan({}, store=store, journal=journal2)
        # The intact done event replays; the truncated one is dropped
        # (its artifact is still in the store, so nothing recomputes —
        # the job is simply eligible for a no-op re-lease cycle).
        assert resumed.jobs[first.job_id].state == "done"
        journal2.close()

        # Appending after a torn tail must not glue the new event onto
        # the partial line: the second life's plan header (and every
        # later event) survives a further replay intact.
        import json

        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip() and self._is_json(line)
        ]
        assert [e["event"] for e in events].count("plan") == 2
        third, _ = make_plan({}, store=store, journal=self._journal(tmp_path))
        assert third.jobs[first.job_id].state == "done"

    @staticmethod
    def _is_json(line):
        import json

        try:
            json.loads(line)
            return True
        except json.JSONDecodeError:
            return False

    def test_transitions_are_journaled(self, tmp_path):
        import json

        store = ArtifactStore()
        journal = self._journal(tmp_path)
        plan, clock = make_plan({}, store=store, journal=journal)
        job = plan.lease("w1")
        clock.advance(10.1)
        plan.expire_leases()  # requeue
        retaken = plan.lease("w1")  # sole worker reclaims
        finish(plan, retaken, "w1")
        journal.close()

        events = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        kinds = [e["event"] for e in events]
        assert kinds == ["plan", "lease", "requeue", "lease", "done"]
        assert events[0]["plan_id"] == plan.plan_id
        assert events[-1]["digest"] == job.digest

"""Unit tests of the cluster scheduling state machine (no sockets).

Time is injected, so lease expiry, exclusion and retry exhaustion are
exercised deterministically without sleeping.
"""

import pytest

from repro import SparkXDConfig
from repro.cluster.plan import PlanFailed, SweepPlan
from repro.pipeline import ArtifactStore, default_stages

CONFIG = SparkXDConfig.small()


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_plan(grid=None, store=None, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("lease_timeout", 10.0)
    plan = SweepPlan(
        CONFIG, grid or {}, store if store is not None else ArtifactStore(),
        clock=clock, **kwargs,
    )
    return plan, clock


def finish(plan, job, worker="w"):
    """Deposit the target artifact and complete the job."""
    plan.store.put(job.stage, job.digest, f"artifact-{job.job_id}")
    assert plan.complete(worker, job.job_id)


class TestPlanConstruction:
    def test_single_point_builds_full_chain(self):
        plan, _ = make_plan({})
        stages = [job.stage for job in plan.jobs.values()]
        assert sorted(stages) == sorted(
            s.name for s in default_stages()
        )

    def test_training_jobs_dedupe_across_dram_points(self):
        plan, _ = make_plan({"voltages": [(1.325,), (1.025,)]})
        by_stage = {}
        for job in plan.jobs.values():
            by_stage.setdefault(job.stage, []).append(job)
        # one shared training chain, one dram-eval job per grid point
        assert len(by_stage["train-baseline"]) == 1
        assert len(by_stage["fault-aware-train"]) == 1
        assert len(by_stage["tolerance-analysis"]) == 1
        assert len(by_stage["dram-eval"]) == 2

    def test_each_seed_gets_its_own_chain(self):
        plan, _ = make_plan({"seed": [1, 2]})
        stages = [job.stage for job in plan.jobs.values()]
        assert stages.count("train-baseline") == 2

    def test_cached_artifacts_need_no_job(self):
        store = ArtifactStore()
        chain = default_stages()
        for stage in chain[:-1]:
            store.put(stage.name, stage.cache_key(CONFIG), "cached")
        plan, _ = make_plan({}, store=store)
        assert [job.stage for job in plan.jobs.values()] == ["dram-eval"]
        (job,) = plan.jobs.values()
        assert not job.deps  # upstream artifacts exist, nothing to wait on

    def test_fully_cached_plan_is_done_immediately(self):
        store = ArtifactStore()
        for stage in default_stages():
            store.put(stage.name, stage.cache_key(CONFIG), "cached")
        plan, _ = make_plan({}, store=store)
        assert plan.done

    def test_validation(self):
        with pytest.raises(ValueError):
            make_plan({}, lease_timeout=0.0)
        with pytest.raises(ValueError):
            make_plan({}, max_attempts=0)


class TestLeasing:
    def test_dependency_order(self):
        plan, _ = make_plan({})
        first = plan.lease("w1")
        assert first.stage == "train-baseline"
        # The rest of the chain is blocked on it.
        assert plan.lease("w2") is None
        finish(plan, first, "w1")
        assert plan.lease("w2").stage == "fault-aware-train"

    def test_chain_progression_to_done(self):
        plan, _ = make_plan({})
        for _ in range(len(plan.jobs)):
            job = plan.lease("w")
            assert job is not None
            finish(plan, job)
        assert plan.done
        assert plan.lease("w") is None

    def test_heartbeat_extends_lease(self):
        plan, clock = make_plan({})
        job = plan.lease("w")
        clock.advance(8.0)
        assert plan.heartbeat("w", job.job_id)
        clock.advance(8.0)  # 16s total, but renewed at t=8
        assert plan.expire_leases() == []
        assert plan.jobs[job.job_id].state == "leased"

    def test_heartbeat_from_non_holder_is_rejected(self):
        plan, _ = make_plan({})
        job = plan.lease("w1")
        assert not plan.heartbeat("w2", job.job_id)
        assert not plan.heartbeat("w1", "no-such-job")


class TestLeaseExpiry:
    def test_expiry_requeues_with_exclusion(self):
        plan, clock = make_plan({})
        job = plan.lease("dying")
        clock.advance(10.1)
        assert plan.expire_leases() == [job.job_id]
        requeued = plan.jobs[job.job_id]
        assert requeued.state == "pending"
        assert "dying" in requeued.excluded

    def test_excluded_worker_skipped_when_peer_is_live(self):
        plan, clock = make_plan({})
        job = plan.lease("dying")
        plan.lease("healthy")  # registers as live (gets nothing: blocked)
        clock.advance(10.1)
        plan.expire_leases()
        # The excluded worker cannot reclaim it while a healthy peer is
        # around...
        assert plan.lease("dying") is None
        # ...and the healthy peer picks it up.
        retaken = plan.lease("healthy")
        assert retaken is not None
        assert retaken.job_id == job.job_id
        assert retaken.worker == "healthy"

    def test_exclusion_relaxes_when_it_would_deadlock(self):
        plan, clock = make_plan({})
        job = plan.lease("only-worker")
        clock.advance(10.1)
        plan.expire_leases()
        # Sole worker of the cluster: exclusion must not starve the job.
        retaken = plan.lease("only-worker")
        assert retaken is not None and retaken.job_id == job.job_id

    def test_bounded_retries_fail_the_plan(self):
        plan, clock = make_plan({}, max_attempts=2)
        for attempt in range(2):
            job = plan.lease(f"w{attempt}")
            assert job is not None
            clock.advance(10.1)
            plan.expire_leases()
        assert plan.failed
        assert job.job_id in plan.failure
        with pytest.raises(PlanFailed):
            plan.raise_on_failure()
        assert plan.lease("w-late") is None


class TestCompletion:
    def test_duplicate_completion_is_idempotent(self):
        plan, _ = make_plan({})
        job = plan.lease("w1")
        finish(plan, job, "w1")
        # Same worker again, and a worker that never held the lease:
        assert plan.complete("w1", job.job_id)
        assert plan.complete("w2", job.job_id)
        assert plan.jobs[job.job_id].state == "done"
        # Stats are kept from the first completion only.
        assert plan.jobs[job.job_id].stats["worker"] == "w1"

    def test_expired_holder_completion_still_counts(self):
        plan, clock = make_plan({})
        job = plan.lease("slow")
        clock.advance(10.1)
        plan.expire_leases()
        # The slow worker finished anyway and pushed the artifact.
        finish(plan, job, "slow")
        assert plan.jobs[job.job_id].state == "done"

    def test_completion_without_artifact_requeues(self):
        plan, _ = make_plan({})
        job = plan.lease("liar")
        assert not plan.complete("liar", job.job_id)  # nothing pushed
        requeued = plan.jobs[job.job_id]
        assert requeued.state == "pending"
        assert "liar" in requeued.excluded

    def test_unknown_job_completion_is_rejected(self):
        plan, _ = make_plan({})
        assert not plan.complete("w", "bogus:job")

    def test_stale_artifactless_completion_spares_current_holder(self):
        plan, clock = make_plan({})
        job = plan.lease("slow")
        clock.advance(10.1)
        plan.expire_leases()
        retaken = plan.lease("current")
        assert retaken.job_id == job.job_id
        # The ex-holder reports completion but its artifact never
        # arrived (e.g. pruned from a shared store): the current
        # holder's live lease must survive, exactly like fail().
        assert not plan.complete("slow", job.job_id)
        assert plan.jobs[job.job_id].state == "leased"
        assert plan.jobs[job.job_id].worker == "current"

    def test_fail_requeues_with_exclusion(self):
        plan, _ = make_plan({})
        job = plan.lease("crashy")
        plan.fail("crashy", job.job_id, "boom")
        requeued = plan.jobs[job.job_id]
        assert requeued.state == "pending"
        assert "crashy" in requeued.excluded
        assert requeued.error == "boom"

    def test_stale_fail_report_is_ignored(self):
        plan, clock = make_plan({})
        job = plan.lease("w1")
        clock.advance(10.1)
        plan.expire_leases()
        retaken = plan.lease("w2")
        assert retaken.job_id == job.job_id
        plan.fail("w1", job.job_id, "late report")  # w1 no longer holds it
        assert plan.jobs[job.job_id].state == "leased"
        assert plan.jobs[job.job_id].worker == "w2"


class TestWorkerSlots:
    def test_slots_are_stable_first_contact_order(self):
        plan, _ = make_plan({})
        assert plan.worker_slot("a") == 0
        assert plan.worker_slot("b") == 1
        assert plan.worker_slot("a") == 0

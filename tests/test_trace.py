"""Tests of inference trace generation and statistics."""

import numpy as np
import pytest

from repro.dram.controller import DramController
from repro.dram.organization import DramOrganization
from repro.dram.specs import tiny_spec
from repro.trace.generator import (
    InferenceTraceSpec,
    chunks_for_weights,
    inference_read_trace,
)
from repro.trace.stats import summarize_trace


@pytest.fixture
def org():
    return DramOrganization(tiny_spec())


class TestChunks:
    def test_chunk_count_math(self, org):
        # tiny spec: 32-bit slots -> one int8 chunk holds 4 weights
        assert chunks_for_weights(org, 4, 8) == 1
        assert chunks_for_weights(org, 5, 8) == 2
        assert chunks_for_weights(org, 2, 32) == 2

    def test_zero_weights(self, org):
        assert chunks_for_weights(org, 0, 8) == 0

    def test_validation(self, org):
        with pytest.raises(ValueError):
            chunks_for_weights(org, -1, 8)
        with pytest.raises(ValueError):
            chunks_for_weights(org, 4, 0)


class TestTraceSpec:
    def test_total_bits(self):
        spec = InferenceTraceSpec(n_weights=10, bits_per_weight=8)
        assert spec.total_bits() == 80

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_weights": 0, "bits_per_weight": 8},
            {"n_weights": 4, "bits_per_weight": 0},
            {"n_weights": 4, "bits_per_weight": 8, "refetch_passes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            InferenceTraceSpec(**kwargs)


class TestTraceGeneration:
    def test_trace_matches_mapping_order(self, org):
        spec = InferenceTraceSpec(n_weights=8, bits_per_weight=32)
        slots = np.array([5, 3, 9, 1, 0, 2, 7, 4], dtype=np.int64)
        trace = inference_read_trace(spec, slots, org)
        assert np.array_equal(trace, slots)

    def test_refetch_tiles_the_trace(self, org):
        spec = InferenceTraceSpec(n_weights=4, bits_per_weight=32, refetch_passes=3)
        slots = np.array([0, 1, 2, 3], dtype=np.int64)
        trace = inference_read_trace(spec, slots, org)
        assert trace.shape == (12,)
        assert np.array_equal(trace[4:8], slots)

    def test_wrong_chunk_count_rejected(self, org):
        spec = InferenceTraceSpec(n_weights=8, bits_per_weight=32)
        with pytest.raises(ValueError, match="chunks"):
            inference_read_trace(spec, np.arange(3), org)

    def test_out_of_device_slot_rejected(self, org):
        spec = InferenceTraceSpec(n_weights=1, bits_per_weight=32)
        with pytest.raises(IndexError):
            inference_read_trace(spec, np.array([org.total_slots]), org)

    def test_duplicate_slots_rejected(self, org):
        spec = InferenceTraceSpec(n_weights=2, bits_per_weight=32)
        with pytest.raises(ValueError, match="same DRAM slot"):
            inference_read_trace(spec, np.array([3, 3]), org)


class TestSummary:
    def test_summary_fields_consistent(self, org):
        controller = DramController(org.spec)
        result = controller.execute(list(range(10)), 1.35)
        summary = summarize_trace(result)
        assert summary.accesses == 10
        assert summary.hit_rate + summary.miss_rate + summary.conflict_rate == pytest.approx(1.0)
        assert summary.total_energy_mj == pytest.approx(result.energy.total_nj * 1e-6)
        assert summary.energy_per_access_nj == pytest.approx(
            result.energy.total_nj / 10
        )
        assert "1.350V" in str(summary)

"""Tests of per-subarray weak-cell profiles."""

import numpy as np
import pytest

from repro.dram.organization import DramOrganization
from repro.dram.specs import tiny_spec
from repro.errors.ber import DEFAULT_BER_CURVE
from repro.errors.weak_cells import SubarrayErrorProfile, WeakCellMap


@pytest.fixture
def org():
    return DramOrganization(tiny_spec())


class TestWeakCellMap:
    def test_severity_mean_is_unbiased(self, org):
        wc = WeakCellMap(org, sigma=0.8, seed=3)
        assert wc.severity.mean() == pytest.approx(1.0)

    def test_sigma_zero_gives_uniform_device(self, org):
        wc = WeakCellMap(org, sigma=0.0, seed=3)
        assert np.all(wc.severity == 1.0)

    def test_deterministic_per_seed(self, org):
        a = WeakCellMap(org, seed=5).severity
        b = WeakCellMap(org, seed=5).severity
        c = WeakCellMap(org, seed=6).severity
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_negative_sigma_rejected(self, org):
        with pytest.raises(ValueError):
            WeakCellMap(org, sigma=-0.1)

    def test_profile_scales_with_device_ber(self, org):
        wc = WeakCellMap(org, sigma=0.5, seed=0)
        p_low = wc.profile_at(1.025)
        p_high = wc.profile_at(1.25)
        assert p_low.device_ber > p_high.device_ber
        # same spatial pattern, scaled
        ratio = p_low.rates / np.maximum(p_high.rates, 1e-300)
        assert np.allclose(ratio, ratio[0])

    def test_profile_at_safe_voltage_is_error_free(self, org):
        wc = WeakCellMap(org, seed=0)
        profile = wc.profile_at(1.35, DEFAULT_BER_CURVE)
        assert profile.device_ber == 0.0
        assert np.all(profile.rates == 0.0)


class TestSubarrayErrorProfile:
    def test_safe_mask_monotone_in_threshold(self, org):
        wc = WeakCellMap(org, sigma=1.0, seed=1)
        profile = wc.profile_at(1.025)
        loose = profile.safe_mask(1e-2)
        tight = profile.safe_mask(1e-5)
        assert loose.sum() >= tight.sum()
        # every subarray safe at the tight bound is safe at the loose one
        assert np.all(loose[tight])

    def test_safe_fraction(self, org):
        wc = WeakCellMap(org, sigma=0.0, seed=0)
        profile = wc.profile_at(1.025)
        assert profile.safe_fraction(1.0) == 1.0
        assert profile.safe_fraction(0.0) == 0.0

    def test_rate_of_and_mean(self, org):
        wc = WeakCellMap(org, sigma=0.3, seed=2)
        profile = wc.profile_at(1.1)
        assert profile.rate_of(0) == pytest.approx(profile.rates[0])
        assert profile.mean_rate() == pytest.approx(profile.rates.mean())

    def test_shape_validation(self, org):
        with pytest.raises(ValueError):
            SubarrayErrorProfile(
                organization=org,
                v_supply=1.1,
                device_ber=1e-5,
                rates=np.zeros(org.total_subarrays + 1),
            )

    def test_range_validation(self, org):
        with pytest.raises(ValueError):
            SubarrayErrorProfile(
                organization=org,
                v_supply=1.1,
                device_ber=1e-5,
                rates=np.full(org.total_subarrays, 1.5),
            )

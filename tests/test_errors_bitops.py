"""Tests of bit-level views and flipping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors.bitops import (
    bits_to_float32,
    bits_to_int8,
    flip_bits_float32,
    flip_bits_int8,
    flip_bits_uint,
    float32_to_bits,
    int8_to_bits,
    msb_positions,
    popcount_difference,
)


class TestViews:
    def test_float32_bit_view_roundtrip(self):
        values = np.array([0.0, 1.0, -2.5, 3.14e-7], dtype=np.float32)
        assert np.array_equal(bits_to_float32(float32_to_bits(values)), values)

    def test_known_float_pattern(self):
        # IEEE-754: 1.0f == 0x3F800000
        assert float32_to_bits(np.array([1.0], dtype=np.float32))[0] == 0x3F800000

    def test_int8_view_roundtrip(self):
        values = np.array([-128, -1, 0, 127], dtype=np.int8)
        assert np.array_equal(bits_to_int8(int8_to_bits(values)), values)


class TestFlipFloat32:
    def test_no_flips_is_identity(self):
        values = np.array([[0.5, 0.25], [0.125, 1.0]], dtype=np.float32)
        out = flip_bits_float32(values, np.array([], dtype=np.int64))
        assert np.array_equal(out, values)
        assert out.shape == values.shape

    def test_sign_bit_flip_negates(self):
        values = np.array([1.5], dtype=np.float32)
        out = flip_bits_float32(values, np.array([31]))
        assert out[0] == pytest.approx(-1.5)

    def test_flip_is_out_of_place(self):
        values = np.array([1.0], dtype=np.float32)
        flip_bits_float32(values, np.array([31]))
        assert values[0] == 1.0

    def test_second_element_addressing(self):
        values = np.array([1.0, 1.0], dtype=np.float32)
        out = flip_bits_float32(values, np.array([32 + 31]))  # sign of element 1
        assert out[0] == 1.0
        assert out[1] == -1.0

    def test_exponent_flip_changes_magnitude_hugely(self):
        # The paper's label-2 observation: MSB flips change the weight
        # value by orders of magnitude.
        values = np.array([0.5], dtype=np.float32)
        out = flip_bits_float32(values, np.array([30]))  # exponent MSB
        assert abs(out[0]) > 1e30 or out[0] == 0.0 or not np.isfinite(out[0])

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(IndexError):
            flip_bits_float32(np.array([1.0], dtype=np.float32), np.array([32]))

    @settings(max_examples=100, deadline=None)
    @given(
        bits=st.lists(st.integers(min_value=0, max_value=4 * 32 - 1), max_size=16),
    )
    def test_double_flip_is_identity_property(self, bits):
        values = np.linspace(0.1, 0.9, 4).astype(np.float32)
        idx = np.array(bits + bits, dtype=np.int64)  # every bit flipped twice
        out = flip_bits_float32(values, idx)
        assert np.array_equal(out.view(np.uint32), values.view(np.uint32))

    @settings(max_examples=100, deadline=None)
    @given(
        bits=st.sets(st.integers(min_value=0, max_value=4 * 32 - 1), max_size=16),
    )
    def test_flip_count_matches_popcount_property(self, bits):
        values = np.linspace(0.1, 0.9, 4).astype(np.float32)
        out = flip_bits_float32(values, np.array(sorted(bits), dtype=np.int64))
        diff = popcount_difference(values.view(np.uint32), out.view(np.uint32))
        assert diff == len(bits)


class TestFlipInt8:
    def test_lsb_flip_changes_by_one(self):
        values = np.array([4], dtype=np.int8)
        out = flip_bits_int8(values, np.array([0]))
        assert out[0] == 5

    def test_msb_flip_wraps_to_negative(self):
        values = np.array([0], dtype=np.int8)
        out = flip_bits_int8(values, np.array([7]))
        assert out[0] == -128

    def test_duplicate_flips_cancel(self):
        values = np.array([42], dtype=np.int8)
        out = flip_bits_int8(values, np.array([3, 3]))
        assert out[0] == 42


class TestHelpers:
    def test_flip_bits_uint16(self):
        words = np.array([0], dtype=np.uint16)
        out = flip_bits_uint(words, np.array([15]), 16)
        assert out[0] == 0x8000

    def test_popcount_requires_matching_arrays(self):
        with pytest.raises(ValueError):
            popcount_difference(
                np.zeros(2, dtype=np.uint32), np.zeros(3, dtype=np.uint32)
            )

    def test_msb_positions(self):
        assert msb_positions(8, 2) == (7, 6)
        assert msb_positions(32, 1) == (31,)
        with pytest.raises(ValueError):
            msb_positions(8, 0)
        with pytest.raises(ValueError):
            msb_positions(8, 9)

"""Unit tests for DRAM device specifications."""

import dataclasses

import pytest

from repro.dram.specs import (
    DramGeometry,
    DramSpec,
    ElectricalParameters,
    LPDDR3_1600_4GB,
    NominalTimings,
    get_dram_spec,
    tiny_spec,
)


class TestDramGeometry:
    def test_default_geometry_is_valid(self):
        DramGeometry().validate()

    def test_capacity_chain_is_consistent(self):
        g = DramGeometry()
        assert g.rows_per_bank == g.subarrays_per_bank * g.rows_per_subarray
        assert g.row_size_bits == g.columns_per_row * g.column_width_bits
        assert g.subarray_size_bits == g.rows_per_subarray * g.row_size_bits
        assert g.bank_size_bits == g.subarrays_per_bank * g.subarray_size_bits
        assert g.chip_size_bits == g.banks_per_chip * g.bank_size_bits

    def test_total_size_multiplies_all_levels(self):
        g = DramGeometry(channels=2, ranks_per_channel=3, chips_per_rank=4)
        assert g.total_size_bits == 2 * 3 * 4 * g.chip_size_bits

    def test_total_subarrays(self):
        g = DramGeometry(channels=2, banks_per_chip=4, subarrays_per_bank=8)
        assert g.total_subarrays == 2 * 4 * 8

    @pytest.mark.parametrize("field", ["channels", "banks_per_chip", "rows_per_subarray"])
    def test_nonpositive_dimension_rejected(self, field):
        g = dataclasses.replace(DramGeometry(), **{field: 0})
        with pytest.raises(ValueError, match=field):
            g.validate()


class TestNominalTimings:
    def test_row_cycle_is_ras_plus_rp(self):
        t = NominalTimings(t_ras_ns=42.0, t_rp_ns=18.0)
        assert t.t_rc_ns == pytest.approx(60.0)


class TestElectricalParameters:
    def test_defaults_valid(self):
        ElectricalParameters().validate()

    def test_vmin_above_nominal_rejected(self):
        bad = ElectricalParameters(v_nominal_volts=1.0, v_min_volts=1.2)
        with pytest.raises(ValueError):
            bad.validate()


class TestPaperSpec:
    def test_lpddr3_is_4_gigabit(self):
        # The paper's device: LPDDR3-1600 4Gb.
        assert LPDDR3_1600_4GB.geometry.total_size_bits == 4 * 2**30

    def test_lpddr3_nominal_voltage(self):
        assert LPDDR3_1600_4GB.electrical.v_nominal_volts == pytest.approx(1.35)
        assert LPDDR3_1600_4GB.electrical.v_min_volts == pytest.approx(1.025)

    def test_lpddr3_clock_matches_1600(self):
        # DDR-1600 -> 800 MHz -> 1.25 ns.
        assert LPDDR3_1600_4GB.timings.clock_ns == pytest.approx(1.25)

    def test_scaled_overrides_geometry_only(self):
        small = LPDDR3_1600_4GB.scaled(rows_per_subarray=4, columns_per_row=8)
        assert small.geometry.rows_per_subarray == 4
        assert small.geometry.columns_per_row == 8
        assert small.geometry.banks_per_chip == LPDDR3_1600_4GB.geometry.banks_per_chip
        assert small.timings == LPDDR3_1600_4GB.timings
        small.validate()


class TestTinySpec:
    def test_tiny_spec_valid_and_small(self):
        spec = tiny_spec()
        spec.validate()
        assert spec.geometry.total_size_bits <= 64 * 1024

    def test_tiny_spec_custom_name(self):
        assert tiny_spec("abc").name == "abc"


class TestDdr5Spec:
    def test_registered_and_valid(self):
        spec = get_dram_spec("ddr5-4800-8gb")
        spec.validate()
        assert get_dram_spec("ddr5").name == spec.name

    def test_capacity_is_8gb(self):
        spec = get_dram_spec("ddr5")
        assert spec.geometry.total_size_bits == 8 * 2**30

    def test_lower_nominal_voltage_than_lpddr3(self):
        ddr5 = get_dram_spec("ddr5")
        lpddr3 = get_dram_spec("lpddr3")
        assert ddr5.electrical.v_nominal_volts < lpddr3.electrical.v_nominal_volts
        assert ddr5.electrical.v_min_volts < ddr5.electrical.v_nominal_volts

    def test_doubled_burst_length(self):
        assert get_dram_spec("ddr5").timings.burst_length == 16

    def test_usable_in_config_with_scaled_voltages(self):
        from repro import SparkXDConfig

        config = SparkXDConfig.small(
            dram_spec=get_dram_spec("ddr5"), voltages=(1.1, 1.0, 0.9)
        )
        assert config.v_nominal == 1.1

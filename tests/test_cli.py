"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.dataset == "mnist"

    def test_tolerance_rates(self):
        args = build_parser().parse_args(
            ["tolerance", "--rates", "1e-7", "1e-5"]
        )
        assert args.rates == [1e-7, 1e-5]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])


class TestDramCommand:
    def test_dram_prints_access_table(self, capsys):
        exit_code = main(["dram"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "hit" in out
        assert "conflict" in out
        assert "per-access savings" in out

    def test_dram_custom_voltages(self, capsys):
        exit_code = main(["dram", "--voltages", "1.35", "1.025"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "1.025V" in out


class TestRunCommand:
    @pytest.mark.slow
    def test_run_tiny_pipeline(self, capsys, tmp_path):
        exit_code = main([
            "run", "--neurons", "15", "--train", "40", "--test", "30",
            "--steps", "40", "--bound", "0.4",
            "--save-model", str(tmp_path / "m.npz"),
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "baseline accuracy" in out
        assert (tmp_path / "m.npz").exists()

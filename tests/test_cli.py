"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.dataset == "mnist"

    def test_tolerance_rates(self):
        args = build_parser().parse_args(
            ["tolerance", "--rates", "1e-7", "1e-5"]
        )
        assert args.rates == [1e-7, 1e-5]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])


class TestClusterParser:
    def test_cluster_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster"])

    def test_worker_requires_coordinator(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "worker"])
        args = build_parser().parse_args(
            ["cluster", "worker", "--coordinator", "host:8752"]
        )
        assert args.cluster_command == "worker"
        assert args.coordinator == "host:8752"
        assert args.max_idle_s == 30.0

    def test_coordinator_grid_flags_match_sweep(self):
        args = build_parser().parse_args([
            "cluster", "coordinator", "--bind", "0.0.0.0:9999",
            "--seeds", "1", "2", "--voltages", "1.325", "1.025",
            "--lease-s", "15", "--max-retries", "5",
        ])
        assert args.bind == "0.0.0.0:9999"
        assert args.seeds == [1, 2]
        assert args.lease_s == 15.0
        assert args.max_retries == 5

    def test_cluster_sweep_defaults(self):
        args = build_parser().parse_args(["cluster", "sweep"])
        assert args.workers == 2
        assert args.port == 0
        assert args.wait_timeout == 600.0
        assert args.max_idle_s == 30.0
        assert args.journal is None
        assert args.resume is False
        assert args.affinity is True

    def test_journal_resume_affinity_flags(self):
        for command in (["cluster", "coordinator"], ["cluster", "sweep"]):
            args = build_parser().parse_args(
                command + ["--journal", "--resume", "--no-affinity"]
            )
            assert args.journal == "auto"  # bare flag: next to the store
            assert args.resume is True
            assert args.affinity is False
            args = build_parser().parse_args(
                command + ["--journal", "/tmp/j.jsonl"]
            )
            assert args.journal == "/tmp/j.jsonl"

    def test_journal_path_resolution(self, tmp_path):
        from repro.cli import _resolve_journal

        # Bare --journal/--resume need --cache-dir to place the file.
        args = build_parser().parse_args(
            ["cluster", "sweep", "--journal", "--cache-dir", str(tmp_path)]
        )
        assert _resolve_journal(args) == tmp_path / "journal.jsonl"
        args = build_parser().parse_args(
            ["cluster", "sweep", "--resume", "--cache-dir", str(tmp_path)]
        )
        assert _resolve_journal(args) == tmp_path / "journal.jsonl"
        args = build_parser().parse_args(["cluster", "sweep", "--resume"])
        with pytest.raises(ValueError, match="cache-dir"):
            _resolve_journal(args)
        # Explicit paths pass through, no journal means None.
        args = build_parser().parse_args(
            ["cluster", "sweep", "--journal", str(tmp_path / "j.jsonl")]
        )
        assert _resolve_journal(args) == tmp_path / "j.jsonl"
        args = build_parser().parse_args(["cluster", "sweep"])
        assert _resolve_journal(args) is None


class TestDramCommand:
    def test_dram_prints_access_table(self, capsys):
        exit_code = main(["dram"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "hit" in out
        assert "conflict" in out
        assert "per-access savings" in out

    def test_dram_custom_voltages(self, capsys):
        exit_code = main(["dram", "--voltages", "1.35", "1.025"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "1.025V" in out


class TestRunCommand:
    @pytest.mark.slow
    def test_run_tiny_pipeline(self, capsys, tmp_path):
        exit_code = main([
            "run", "--neurons", "15", "--train", "40", "--test", "30",
            "--steps", "40", "--bound", "0.4",
            "--save-model", str(tmp_path / "m.npz"),
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "baseline accuracy" in out
        assert (tmp_path / "m.npz").exists()


class TestNewRunFlags:
    def test_run_accepts_voltages_and_representation(self):
        args = build_parser().parse_args([
            "run", "--voltages", "1.325", "1.025",
            "--representation", "int8", "--mapping", "baseline",
        ])
        assert args.voltages == [1.325, 1.025]
        assert args.representation == "int8"
        assert args.mapping == "baseline"

    def test_run_rejects_unknown_representation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--representation", "int64"])


class TestStagesCommand:
    def test_lists_stages_and_registries(self, capsys):
        assert main(["stages"]) == 0
        out = capsys.readouterr().out
        for needle in (
            "train-baseline", "fault-aware-train", "tolerance-analysis",
            "dram-eval", "mnist", "model0", "sparkxd", "lpddr3-1600-4gb",
        ):
            assert needle in out

    def test_json_output_parses(self, capsys):
        import json

        assert main(["stages", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in payload["stages"]] == [
            "train-baseline", "fault-aware-train",
            "tolerance-analysis", "dram-eval",
        ]
        assert "baseline" in payload["registries"]["mapping_policies"]


class TestDramSpecFlag:
    def test_dram_accepts_registered_spec(self, capsys):
        assert main(["dram", "--spec", "tiny", "--voltages", "1.35"]) == 0
        assert "tiny-test-dram" in capsys.readouterr().out

    def test_dram_unknown_spec_fails_cleanly(self, capsys):
        assert main(["dram", "--spec", "ddr9"]) == 2
        assert "unknown dram spec" in capsys.readouterr().err

    def test_dram_json_output(self, capsys):
        import json

        assert main(["dram", "--json", "--voltages", "1.35", "1.025"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"] == "LPDDR3-1600 4Gb"
        assert len(payload["per_access_savings"]) == 2


class TestSweepCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.datasets == ["mnist"]
        assert args.workers == 1
        assert args.voltages is None

    @pytest.mark.slow
    def test_tiny_sweep_end_to_end(self, capsys, tmp_path):
        exit_code = main([
            "sweep", "--neurons", "12", "--train", "40", "--test", "25",
            "--steps", "30", "--bound", "0.5",
            "--voltages", "1.325", "1.025",
            "--csv", str(tmp_path / "sweep.csv"),
            "--out", str(tmp_path / "sweep.json"),
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "2 grid points" in out
        assert (tmp_path / "sweep.csv").exists()
        assert (tmp_path / "sweep.json").exists()

        from repro.analysis.export import load_run_records

        records = load_run_records(tmp_path / "sweep.json")
        assert len(records) == 2
        # one training shared across both voltage points
        assert records[1].cache_hits >= 3


class TestCacheCommand:
    def _fill(self, cache_dir):
        from repro.pipeline import ArtifactStore

        store = ArtifactStore(cache_dir)
        for i in range(3):
            store.put("stage", f"d{i}", b"y" * 4000)

    def test_cache_prune_evicts(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        self._fill(cache)
        exit_code = main([
            "cache", "prune", "--cache-dir", str(cache), "--max-bytes", "4500",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "pruned 2 artifact(s)" in out
        assert len(list(cache.glob("*/*.pkl"))) == 1

    def test_cache_prune_json(self, capsys, tmp_path):
        import json

        cache = tmp_path / "cache"
        self._fill(cache)
        exit_code = main([
            "cache", "prune", "--cache-dir", str(cache),
            "--max-bytes", "1G", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["removed_files"] == 0
        assert payload["kept_files"] == 3
        assert payload["dry_run"] is False

    def test_cache_prune_dry_run_leaves_store_alone(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        self._fill(cache)
        exit_code = main([
            "cache", "prune", "--cache-dir", str(cache),
            "--max-bytes", "4500", "--dry-run",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "dry run: would prune 2 artifact(s)" in out
        assert len(list(cache.glob("*/*.pkl"))) == 3  # nothing deleted

    def test_cache_prune_dry_run_json(self, capsys, tmp_path):
        import json

        cache = tmp_path / "cache"
        self._fill(cache)
        exit_code = main([
            "cache", "prune", "--cache-dir", str(cache),
            "--max-bytes", "4500", "--dry-run", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["dry_run"] is True
        assert payload["removed_files"] == 2
        assert len(list(cache.glob("*/*.pkl"))) == 3

    def test_size_suffixes(self):
        from repro.cli import _parse_size

        assert _parse_size("4096") == 4096
        assert _parse_size("4K") == 4096
        assert _parse_size("2m") == 2 * 1024**2
        assert _parse_size("1G") == 1024**3
        with pytest.raises(ValueError):
            _parse_size("many")

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestEngineFlags:
    def test_run_parser_accepts_engine(self):
        args = build_parser().parse_args(["run", "--engine", "sequential"])
        assert args.engine == "sequential"

    def test_run_parser_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engine", "warp"])

    def test_sweep_parser_accepts_error_models(self):
        args = build_parser().parse_args(
            ["sweep", "--error-models", "model0", "eden"]
        )
        assert args.error_models == ["model0", "eden"]

    def test_run_parser_accepts_error_model(self):
        args = build_parser().parse_args(["run", "--error-model", "eden"])
        assert args.error_model == "eden"


class TestTrainingEngineFlags:
    def test_run_parser_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.train_batch_size == 1
        assert args.compute_dtype == "float64"

    def test_run_parser_accepts_training_knobs(self):
        args = build_parser().parse_args(
            ["run", "--train-batch-size", "16", "--compute-dtype", "float32"]
        )
        assert args.train_batch_size == 16
        assert args.compute_dtype == "float32"

    def test_run_parser_rejects_unknown_dtype(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--compute-dtype", "float16"])

    def test_sweep_parser_accepts_axes(self):
        args = build_parser().parse_args([
            "sweep", "--train-batch-size", "1", "8",
            "--compute-dtype", "float64", "float32",
            "--threads-per-worker", "2",
        ])
        assert args.train_batch_sizes == [1, 8]
        assert args.compute_dtypes == ["float64", "float32"]
        assert args.threads_per_worker == 2

    @pytest.mark.slow
    def test_run_minibatch_json_surfaces_knobs(self, capsys):
        import json

        exit_code = main([
            "run", "--neurons", "12", "--train", "30", "--test", "20",
            "--steps", "25", "--bound", "0.5",
            "--train-batch-size", "4", "--compute-dtype", "float32",
            "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["train_batch_size"] == 4
        assert payload["compute_dtype"] == "float32"

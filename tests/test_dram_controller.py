"""Tests of the DRAM controller facade."""

import numpy as np
import pytest

from repro.dram.controller import DramController
from repro.dram.specs import tiny_spec


@pytest.fixture
def controller():
    return DramController(tiny_spec())


class TestExecute:
    def test_accepts_flat_slot_indices(self, controller):
        result = controller.execute([0, 1, 2, 3], 1.35)
        assert result.stats.accesses == 4
        assert result.stats.hits == 3

    def test_accepts_coordinates(self, controller):
        coords = [controller.organization.coordinate_of(s) for s in (0, 1)]
        result = controller.execute(coords, 1.35)
        assert result.stats.accesses == 2

    def test_accepts_numpy_trace(self, controller):
        result = controller.execute(np.arange(6), 1.35)
        assert result.stats.accesses == 6

    def test_energy_positive_and_time_positive(self, controller):
        result = controller.execute([0, 1, 2], 1.35)
        assert result.total_energy_nj > 0
        assert result.total_time_ns > 0
        assert result.throughput_accesses_per_us > 0

    def test_summary_mentions_voltage_and_counts(self, controller):
        text = controller.execute([0, 1], 1.35).summary()
        assert "1.350V" in text
        assert "accesses=2" in text

    def test_timing_attached_matches_voltage(self, controller):
        result = controller.execute([0], 1.025)
        assert result.timing.v_supply == pytest.approx(1.025)
        assert result.v_supply == pytest.approx(1.025)


class TestVoltageSweep:
    def test_execute_at_voltages_reuses_trace(self, controller):
        voltages = [1.35, 1.175, 1.025]
        results = controller.execute_at_voltages(iter([0, 1, 2, 3]), voltages)
        assert [r.v_supply for r in results] == voltages
        # identical access mix at every voltage
        assert len({r.stats.accesses for r in results}) == 1

    def test_energy_monotone_decreasing_with_voltage(self, controller):
        results = controller.execute_at_voltages(list(range(16)), [1.35, 1.175, 1.025])
        energies = [r.total_energy_nj for r in results]
        assert energies[0] > energies[1] > energies[2]

    def test_time_monotone_increasing_as_voltage_drops(self, controller):
        # derated row timings stretch execution (hidden or not, the
        # first activation always pays tRCD)
        results = controller.execute_at_voltages(list(range(16)), [1.35, 1.025])
        assert results[1].total_time_ns >= results[0].total_time_ns

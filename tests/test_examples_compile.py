"""Every example must at least parse and expose a main() entry point."""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    # the deliverable requires at least three runnable examples
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} needs a module docstring"
    has_main = any(
        isinstance(node, ast.FunctionDef) and node.name == "main"
        for node in tree.body
    )
    assert has_main, f"{path.name} needs a main() function"
    source = path.read_text()
    assert '__name__ == "__main__"' in source


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_only_the_public_package(path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            assert root in ("repro", "argparse", "numpy"), (
                f"{path.name} imports {node.module}; examples should "
                "exercise the public API"
            )

"""Lint framework mechanics: findings, suppressions, baseline, report."""

import json
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    Finding,
    REPORT_VERSION,
    default_checkers,
    is_suppressed,
    parse_suppressions,
    run_lint,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"


def _finding(**overrides):
    base = dict(
        rule="rng-discipline",
        severity="error",
        path="snn/network.py",
        line=17,
        message="unseeded generator",
        symbol="DiehlCookNetwork.__init__",
    )
    base.update(overrides)
    return Finding(**base)


class TestFinding:
    def test_identity_is_line_free(self):
        assert _finding(line=17).identity == _finding(line=99).identity

    def test_identity_distinguishes_symbol(self):
        assert _finding().identity != _finding(symbol="other").identity

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            _finding(severity="fatal")

    def test_gating_excludes_info(self):
        assert _finding(severity="error").gating
        assert _finding(severity="warning").gating
        assert not _finding(severity="info").gating

    def test_format_is_path_line_rule(self):
        text = _finding().format()
        assert text.startswith("snn/network.py:17: error: [rng-discipline]")


class TestSuppressions:
    def test_parse_single_and_multi_rule(self):
        text = (
            "x = 1\n"
            "y = foo()  # lint: disable=rng-discipline\n"
            "z = bar()  # lint: disable=lock-discipline, rng-discipline\n"
        )
        suppressions = parse_suppressions(text)
        assert suppressions == {
            2: {"rng-discipline"},
            3: {"lock-discipline", "rng-discipline"},
        }

    def test_disable_all(self):
        suppressions = parse_suppressions("q = f()  # lint: disable=all\n")
        assert is_suppressed(_finding(line=1), suppressions)

    def test_wrong_rule_does_not_suppress(self):
        suppressions = parse_suppressions(
            "q = f()  # lint: disable=lock-discipline\n"
        )
        assert not is_suppressed(_finding(line=1), suppressions)

    def test_wrong_line_does_not_suppress(self):
        suppressions = parse_suppressions(
            "q = f()  # lint: disable=rng-discipline\n"
        )
        assert not is_suppressed(_finding(line=2), suppressions)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [_finding(), _finding(symbol="other")]
        path = tmp_path / "lint-baseline.json"
        Baseline.from_findings(findings).write(path)
        loaded = Baseline.load(path)
        assert loaded.new_findings(findings) == []

    def test_new_finding_survives_baseline(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        Baseline.from_findings([_finding()]).write(path)
        fresh = _finding(message="a different defect")
        assert Baseline.load(path).new_findings([_finding(), fresh]) == [fresh]

    def test_multiset_semantics(self):
        # Two identical findings, one baselined: one is still new.
        baseline = Baseline.from_findings([_finding()])
        pair = [_finding(line=1), _finding(line=2)]  # same identity
        assert len(baseline.new_findings(pair)) == 1

    def test_baseline_survives_line_churn(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        Baseline.from_findings([_finding(line=17)]).write(path)
        assert Baseline.load(path).new_findings([_finding(line=400)]) == []

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="not a lint baseline"):
            Baseline.load(path)


class TestRunLint:
    def test_parse_failure_becomes_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "fine.py").write_text("x = 1\n")
        report = run_lint(tmp_path)
        assert report.files_scanned == 1  # the parseable one
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.findings[0].path == "broken.py"

    def test_baseline_path_accepted(self, tmp_path):
        baseline = tmp_path / "lint-baseline.json"
        report = run_lint(FIXTURES / "rng_tree")
        Baseline.from_findings(report.findings).write(baseline)
        rerun = run_lint(FIXTURES / "rng_tree", baseline=baseline)
        assert rerun.new_findings == []
        assert rerun.ok
        assert len(rerun.findings) == len(report.findings)

    def test_default_checkers_cover_all_six_rules(self):
        assert tuple(c.rule for c in default_checkers()) == (
            "fingerprint-completeness",
            "rng-discipline",
            "lock-discipline",
            "protocol-consistency",
            "workspace-discipline",
            "log-discipline",
        )


class TestReportSchema:
    def test_json_shape(self):
        report = run_lint(FIXTURES / "rng_tree")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["version"] == REPORT_VERSION
        assert set(payload) == {
            "version", "root", "files_scanned", "rules", "counts_by_rule",
            "counts_by_severity", "total", "new", "gating", "suppressed",
            "baseline", "ok", "findings", "new_findings",
        }
        assert payload["total"] == len(payload["findings"])
        assert payload["ok"] is (payload["gating"] == 0)
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule", "severity", "path", "line", "symbol",
                "message", "identity",
            }

    def test_counts_add_up(self):
        report = run_lint(FIXTURES / "rng_tree")
        assert sum(report.counts_by_rule().values()) == len(report.findings)
        assert sum(report.counts_by_severity().values()) == len(report.findings)

"""Unit + property tests for DRAM address arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.organization import DramCoordinate, DramOrganization, SubarrayId
from repro.dram.specs import tiny_spec, LPDDR3_1600_4GB


@pytest.fixture
def org():
    return DramOrganization(tiny_spec())


class TestCapacity:
    def test_total_slots(self, org):
        g = org.geometry
        expected = (
            g.channels
            * g.ranks_per_channel
            * g.chips_per_rank
            * g.banks_per_chip
            * g.subarrays_per_bank
            * g.rows_per_subarray
            * g.columns_per_row
        )
        assert org.total_slots == expected

    def test_slots_needed_rounds_up(self, org):
        assert org.slots_needed(0) == 0
        assert org.slots_needed(1) == 1
        assert org.slots_needed(org.slot_bits) == 1
        assert org.slots_needed(org.slot_bits + 1) == 2

    def test_slots_needed_rejects_negative(self, org):
        with pytest.raises(ValueError):
            org.slots_needed(-1)


class TestRoundTrip:
    def test_first_and_last_slots(self, org):
        first = org.coordinate_of(0)
        assert first == DramCoordinate(0, 0, 0, 0, 0, 0, 0)
        last = org.coordinate_of(org.total_slots - 1)
        g = org.geometry
        assert last.column == g.columns_per_row - 1
        assert last.row == g.rows_per_subarray - 1

    def test_sequential_slots_walk_columns_first(self, org):
        # Baseline mapping order: consecutive slots share a row until the
        # row is full (Section IV-B Step-2: exploit the burst feature).
        c0 = org.coordinate_of(0)
        c1 = org.coordinate_of(1)
        assert c1.column == c0.column + 1
        assert c1.same_row(c0)

    def test_row_boundary_advances_row(self, org):
        g = org.geometry
        before = org.coordinate_of(g.columns_per_row - 1)
        after = org.coordinate_of(g.columns_per_row)
        assert after.row == before.row + 1
        assert after.column == 0

    def test_out_of_range_slot_rejected(self, org):
        with pytest.raises(IndexError):
            org.coordinate_of(org.total_slots)
        with pytest.raises(IndexError):
            org.coordinate_of(-1)

    def test_bad_coordinate_rejected(self, org):
        bad = DramCoordinate(0, 0, 0, 0, 0, 0, org.geometry.columns_per_row)
        with pytest.raises(IndexError):
            org.slot_of(bad)

    @settings(max_examples=200, deadline=None)
    @given(slot=st.integers(min_value=0, max_value=2 * 2 * 4 * 8 - 1))
    def test_roundtrip_identity_property(self, slot):
        org = DramOrganization(tiny_spec())
        assert org.slot_of(org.coordinate_of(slot)) == slot

    @settings(max_examples=50, deadline=None)
    @given(slot=st.integers(min_value=0, max_value=LPDDR3_1600_4GB.geometry.total_size_bits // 64 - 1))
    def test_roundtrip_identity_full_device(self, slot):
        org = DramOrganization(LPDDR3_1600_4GB)
        assert org.slot_of(org.coordinate_of(slot)) == slot


class TestSubarrays:
    def test_subarray_count(self, org):
        assert org.total_subarrays == len(list(org.iter_subarrays()))

    def test_subarray_index_roundtrip(self, org):
        for index in range(org.total_subarrays):
            sid = org.subarray_from_index(index)
            assert org.subarray_index(sid) == index

    def test_subarray_of_coordinate(self, org):
        coord = org.coordinate_of(org.slots_per_subarray())  # first slot of 2nd subarray
        sid = org.subarray_of(coord)
        assert org.subarray_index(sid) == 1

    def test_subarray_index_out_of_range(self, org):
        with pytest.raises(IndexError):
            org.subarray_from_index(org.total_subarrays)

    def test_flat_slot_order_nests_subarray_above_rows(self, org):
        # slot // slots_per_subarray must equal the flat subarray index
        # (the mapping policies rely on this).
        per = org.slots_per_subarray()
        for slot in range(0, org.total_slots, max(1, per // 3)):
            coord = org.coordinate_of(slot)
            assert org.subarray_index(org.subarray_of(coord)) == slot // per


class TestCoordinateHelpers:
    def test_same_row_and_same_bank(self):
        a = DramCoordinate(0, 0, 0, 1, 2, 3, 4)
        b = DramCoordinate(0, 0, 0, 1, 2, 3, 7)
        c = DramCoordinate(0, 0, 0, 1, 0, 3, 4)
        assert a.same_row(b) and b.same_row(a)
        assert not a.same_row(c)
        assert a.same_bank(c)

    def test_ordering_is_lexicographic(self):
        a = DramCoordinate(0, 0, 0, 0, 0, 0, 1)
        b = DramCoordinate(0, 0, 0, 0, 0, 1, 0)
        assert a < b

    def test_subarray_id_is_hashable_and_ordered(self):
        s1 = SubarrayId(0, 0, 0, 0, 1)
        s2 = SubarrayId(0, 0, 0, 1, 0)
        assert s1 < s2
        assert len({s1, s2, SubarrayId(0, 0, 0, 0, 1)}) == 2

"""Tests of the batched minibatch STDP training engine (repro.engine.trainer).

The load-bearing property mirrors the evaluator's: ``batch_size=1``
must reproduce the historical sequential training loop **bit for bit**
— same weights, same adaptive thresholds, same RNG end state — for the
clean and fault-aware paths, at float64 and float32.  ``batch_size>1``
is a documented approximation: these tests pin down its *semantics*
(one corrupted read per minibatch, per-stage BER schedule preserved,
weights stay physical, random stream unchanged), not bit-equality.
"""

import numpy as np
import pytest

from repro.engine.trainer import BatchedTrainer
from repro.snn.encoding import poisson_rate_code
from repro.snn.network import DiehlCookNetwork, NetworkParameters, make_stdp
from repro.snn.stdp import STDPRule, normalize_columns
from repro.snn.training import train_unsupervised

PARAMS = NetworkParameters(n_input=64, n_neurons=16)


def _workload(n_samples=12, seed=3):
    rng = np.random.default_rng(seed)
    images = rng.random((n_samples, PARAMS.n_input))
    labels = np.arange(n_samples) % 10
    return images, labels


def _network(dtype=np.float64, seed=1):
    return DiehlCookNetwork(PARAMS, rng=np.random.default_rng(seed), dtype=dtype)


def reference_sequential_train(
    network, images, n_steps, epochs, rng, corrupt_weights=None
):
    """The pre-refactor ``train_unsupervised`` loop, replicated verbatim.

    This is the ground truth the ``batch_size=1`` engine must match bit
    for bit (the historical code cast the corrupted read to float64;
    at a float64 network — the only dtype it supported — casting to
    ``network.dtype`` is the identical operation).
    """
    stdp = make_stdp(network)
    for _epoch in range(epochs):
        order = rng.permutation(len(images))
        for i in order:
            train = poisson_rate_code(images[i], n_steps, rng=rng)
            if corrupt_weights is not None:
                clean = network.weights
                corrupted = np.asarray(corrupt_weights(clean), dtype=network.dtype)
                network.weights = corrupted.copy()
                network.run_sample(train, stdp=stdp, normalize=False)
                delta = network.weights - corrupted
                network.weights = np.clip(clean + delta, 0.0, network.w_max)
                if network.parameters.weight_norm > 0:
                    normalize_columns(
                        network.weights, network.parameters.weight_norm
                    )
            else:
                network.run_sample(train, stdp=stdp)


def _gaussian_corrupter(seed):
    rng = np.random.default_rng(seed)

    def corrupt(weights):
        return np.clip(weights + rng.normal(0.0, 0.01, weights.shape), 0.0, 1.0)

    return corrupt


class TestBatchSizeOneBitIdentity:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("corrupt", [False, True])
    def test_matches_pre_refactor_loop(self, dtype, corrupt):
        images, _ = _workload()
        ref_net, new_net = _network(dtype), _network(dtype)
        ref_rng, new_rng = np.random.default_rng(7), np.random.default_rng(7)
        ref_corrupt = _gaussian_corrupter(5) if corrupt else None
        new_corrupt = _gaussian_corrupter(5) if corrupt else None

        reference_sequential_train(
            ref_net, images, 30, 2, ref_rng, corrupt_weights=ref_corrupt
        )
        trainer = BatchedTrainer(
            new_net, batch_size=1, corrupt_weights=new_corrupt
        )
        trainer.train(images, n_steps=30, epochs=2, rng=new_rng)

        assert new_net.weights.dtype == np.dtype(dtype)
        assert np.array_equal(ref_net.weights, new_net.weights)
        assert np.array_equal(ref_net.neurons.theta, new_net.neurons.theta)
        assert ref_rng.bit_generator.state == new_rng.bit_generator.state

    def test_train_unsupervised_routes_through_trainer(self):
        images, labels = _workload()
        ref_net, new_net = _network(), _network()
        ref_rng, new_rng = np.random.default_rng(7), np.random.default_rng(7)
        reference_sequential_train(ref_net, images, 30, 1, ref_rng)
        model = train_unsupervised(
            new_net, images, labels, n_steps=30, epochs=1, rng=new_rng,
            batch_size=1,
        )
        assert np.array_equal(ref_net.weights, new_net.weights)
        assert model.metadata["train_batch_size"] == 1


class TestMinibatchSemantics:
    def test_one_corrupted_read_per_minibatch(self):
        images, labels = _workload(n_samples=10)
        calls = []

        def corrupt(weights):
            calls.append(weights.copy())
            return weights

        net = _network()
        train_unsupervised(
            net, images, labels, n_steps=20, epochs=2, batch_size=4,
            rng=np.random.default_rng(7), corrupt_weights=corrupt,
        )
        # ceil(10 / 4) = 3 minibatch reads per epoch, 2 epochs.
        assert len(calls) == 6

    def test_random_stream_matches_sequential(self):
        """Minibatching changes the weights but not the random stream:
        permutation + encoding draws are identical either way."""
        images, labels = _workload()
        rng_seq, rng_mb = np.random.default_rng(7), np.random.default_rng(7)
        net_seq, net_mb = _network(), _network()
        BatchedTrainer(net_seq, batch_size=1).train(
            images, n_steps=25, epochs=2, rng=rng_seq
        )
        BatchedTrainer(net_mb, batch_size=5).train(
            images, n_steps=25, epochs=2, rng=rng_mb
        )
        assert rng_seq.bit_generator.state == rng_mb.bit_generator.state
        # ...and the approximation is real: weights differ.
        assert not np.array_equal(net_seq.weights, net_mb.weights)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_minibatch_weights_stay_physical(self, dtype):
        images, labels = _workload()
        net = _network(dtype)
        train_unsupervised(
            net, images, labels, n_steps=25, epochs=2, batch_size=4,
            rng=np.random.default_rng(7),
            corrupt_weights=_gaussian_corrupter(5),
        )
        assert net.weights.dtype == np.dtype(dtype)
        assert np.all(np.isfinite(net.weights))
        assert net.weights.min() >= 0.0
        assert net.weights.max() <= net.w_max
        # homeostasis advanced (theta merged back from the lanes)
        assert (net.neurons.theta > 0).any()

    def test_ragged_final_minibatch(self):
        images, labels = _workload(n_samples=7)
        net = _network()
        # 7 samples in minibatches of 3 -> final minibatch of 1 (ragged).
        train_unsupervised(
            net, images, labels, n_steps=20, epochs=1, batch_size=3,
            rng=np.random.default_rng(7),
        )
        assert np.all(np.isfinite(net.weights))

    def test_batch_size_larger_than_set_is_one_pass(self):
        images, labels = _workload(n_samples=6)
        net = _network()
        calls = []

        def corrupt(weights):
            calls.append(1)
            return weights

        train_unsupervised(
            net, images, labels, n_steps=20, epochs=1, batch_size=64,
            rng=np.random.default_rng(7), corrupt_weights=corrupt,
        )
        assert len(calls) == 1


class TestFaultAwareMinibatch:
    def test_schedule_reaches_every_ber_stage(self):
        from repro.core.fault_aware_training import (
            improve_error_tolerance,
            train_baseline,
        )
        from repro.datasets import load_dataset
        from repro.errors.injection import ErrorInjector
        from repro.snn.quantization import Float32Representation

        dataset = load_dataset("mnist", 40, 24, seed=7)
        rng = np.random.default_rng(11)
        baseline = train_baseline(
            dataset, n_neurons=20, epochs=1, n_steps=40, rng=rng, batch_size=4
        )
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=3)
        rates = (1e-5, 1e-3)
        result = improve_error_tolerance(
            baseline, dataset, injector, rates=rates, epochs_per_rate=1,
            n_steps=40, rng=np.random.default_rng(5), batch_size=4,
        )
        assert result.rates == rates
        assert set(result.accuracy_per_rate) == set(rates)
        assert np.all(result.model.weights >= 0.0)
        assert np.all(result.model.weights <= 1.0)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_float32_end_to_end(self, dtype):
        from repro.core.fault_aware_training import train_baseline
        from repro.datasets import load_dataset

        dataset = load_dataset("mnist", 30, 20, seed=7)
        model = train_baseline(
            dataset, n_neurons=15, epochs=1, n_steps=30,
            rng=np.random.default_rng(11), batch_size=4, dtype=dtype,
        )
        assert model.weights.dtype == np.dtype(dtype)
        assert 0.0 <= model.accuracy <= 1.0


class TestValidation:
    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError):
            BatchedTrainer(_network(), batch_size=0)

    def test_rejects_batched_network(self):
        net = DiehlCookNetwork(PARAMS, batch_shape=(3,), init_weights=False)
        with pytest.raises(ValueError):
            BatchedTrainer(net)

    def test_train_validates_steps_and_epochs(self):
        trainer = BatchedTrainer(_network())
        images, _ = _workload(n_samples=2)
        with pytest.raises(ValueError):
            trainer.train(images, n_steps=0)
        with pytest.raises(ValueError):
            trainer.train(images, n_steps=10, epochs=0)

    def test_run_batch_stdp_requires_batched_shape(self):
        net = _network()
        stdp = make_stdp(net)
        with pytest.raises(ValueError):
            net.run_batch_stdp(
                np.zeros((2, 5, PARAMS.n_input), dtype=bool), stdp,
                np.zeros((PARAMS.n_input, PARAMS.n_neurons)),
            )

    def test_run_batch_stdp_requires_matching_stdp_batch(self):
        net = DiehlCookNetwork(PARAMS, batch_shape=(2,), init_weights=False)
        stdp = STDPRule(PARAMS.n_input, batch_shape=(3,))
        with pytest.raises(ValueError):
            net.run_batch_stdp(
                np.zeros((2, 5, PARAMS.n_input), dtype=bool), stdp,
                np.zeros((PARAMS.n_input, PARAMS.n_neurons)),
            )

    def test_step_accumulate_validates_shapes(self):
        rule = STDPRule(4, batch_shape=(2,))
        delta = np.zeros((4, 3))
        bound = np.ones((4, 3))
        with pytest.raises(ValueError):
            rule.step_accumulate(np.zeros((3, 4), bool), np.zeros((2, 3), bool),
                                 delta, bound)
        with pytest.raises(ValueError):
            rule.step_accumulate(np.zeros((2, 4), bool), np.zeros((2, 5), bool),
                                 delta, bound)
        with pytest.raises(ValueError):
            rule.step_accumulate(np.zeros((2, 4), bool), np.zeros((2, 3), bool),
                                 delta, np.ones((4, 4)))


class TestStepAccumulate:
    def test_single_lane_matches_in_place_step_before_clipping(self):
        """With one lane, small updates and far-from-bound weights, the
        accumulated delta equals what the in-place rule applies."""
        rng = np.random.default_rng(0)
        weights = rng.random((6, 4)) * 0.3 + 0.2
        in_place = STDPRule(6)
        acc = STDPRule(6, batch_shape=(1,))
        delta = np.zeros_like(weights)
        bound = acc.frozen_bound(weights)
        applied = weights.copy()
        for t in range(5):
            pre = rng.random(6) < 0.4
            post = rng.random(4) < 0.3
            first_post = post.any() and not (applied != weights).any()
            in_place.step(applied, pre, post)
            acc.step_accumulate(pre[None, :], post[None, :], delta, bound)
            if first_post:
                # after the first update the in-place rule compounds
                # through the bound; only the first step is comparable
                assert np.allclose(weights + delta, applied)
        # traces advanced identically throughout
        assert np.allclose(in_place.x_pre, acc.x_pre[0])

    def test_lanes_sum(self):
        """Two lanes accumulate the sum of their individual deltas."""
        rng = np.random.default_rng(1)
        weights = rng.random((5, 3)) * 0.5
        pre = rng.random((2, 5)) < 0.5
        post = rng.random((2, 3)) < 0.5
        rule_both = STDPRule(5, batch_shape=(2,))
        bound = rule_both.frozen_bound(weights)
        delta_both = np.zeros_like(weights)
        rule_both.step_accumulate(pre, post, delta_both, bound)
        total = np.zeros_like(weights)
        for lane in range(2):
            rule = STDPRule(5, batch_shape=(1,))
            delta = np.zeros_like(weights)
            rule.step_accumulate(pre[lane : lane + 1], post[lane : lane + 1],
                                 delta, bound)
            total += delta
        assert np.allclose(delta_both, total)

"""Tests of the Diehl & Cook architecture (Fig. 4a)."""

import numpy as np
import pytest

from repro.snn.network import (
    DiehlCookNetwork,
    NetworkParameters,
    PAPER_NETWORK_SIZES,
    make_stdp,
)


@pytest.fixture
def net(rng):
    params = NetworkParameters(n_input=16, n_neurons=8)
    return DiehlCookNetwork(params, rng=rng)


class TestConstruction:
    def test_paper_sizes_listed(self):
        assert PAPER_NETWORK_SIZES == (400, 900, 1600, 2500, 3600)

    def test_weights_shape_and_range(self, net):
        assert net.weights.shape == (16, 8)
        assert net.weights.min() >= 0.0

    def test_weight_columns_normalised_at_init(self, net):
        sums = net.weights.sum(axis=0)
        assert np.allclose(sums, net.parameters.weight_norm)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NetworkParameters(n_input=0).validate()
        with pytest.raises(ValueError):
            NetworkParameters(excitation_gain=0).validate()

    def test_n_weights(self, net):
        assert net.n_weights == 16 * 8


class TestSetWeights:
    def test_set_weights_copies(self, net):
        new = np.full((16, 8), 0.5)
        net.set_weights(new)
        new[0, 0] = 99.0
        assert net.weights[0, 0] == 0.5

    def test_set_weights_validates_shape(self, net):
        with pytest.raises(ValueError):
            net.set_weights(np.zeros((4, 4)))


class TestDynamics:
    def test_step_returns_bool_spikes(self, net):
        spikes = net.step(np.zeros(16, dtype=bool))
        assert spikes.shape == (8,)
        assert spikes.dtype == bool

    def test_step_validates_input_shape(self, net):
        with pytest.raises(ValueError):
            net.step(np.zeros(5, dtype=bool))

    def test_input_spikes_drive_conductance(self, net):
        net.step(np.ones(16, dtype=bool))
        assert np.all(net.g_excitatory.g > 0)

    def test_lateral_inhibition_spares_the_spiker(self, net):
        # Drive hard so someone fires, then check inhibition applies to
        # the *other* neurons on the following step.
        net.set_weights(np.full((16, 8), 1.0))
        spikes = net.step(np.ones(16, dtype=bool))
        if not spikes.any():  # drive once more if the first step ramps
            spikes = net.step(np.ones(16, dtype=bool))
        assert spikes.any()
        net.step(np.zeros(16, dtype=bool))
        g = net.g_inhibitory.g
        n_spikes = int(spikes.sum())
        expected_other = n_spikes * net.parameters.inhibition_strength
        others = ~spikes
        assert np.allclose(g[others], expected_other, rtol=1e-6)
        if n_spikes < 8:
            assert np.all(g[spikes] < expected_other)

    def test_reset_state_clears_dynamics(self, net):
        net.step(np.ones(16, dtype=bool))
        net.reset_state()
        assert np.all(net.g_excitatory.g == 0)
        assert np.all(net.g_inhibitory.g == 0)
        assert np.all(net.neurons.v == net.parameters.lif.v_rest)


class TestRunSample:
    def test_counts_shape(self, net, rng):
        train = rng.random((30, 16)) < 0.3
        counts = net.run_sample(train)
        assert counts.shape == (8,)
        assert counts.dtype == np.int64

    def test_inference_does_not_change_weights_or_theta(self, net, rng):
        train = rng.random((30, 16)) < 0.3
        weights = net.weights.copy()
        theta = net.neurons.theta.copy()
        net.run_sample(train)
        assert np.array_equal(net.weights, weights)
        assert np.array_equal(net.neurons.theta, theta)

    def test_training_changes_weights(self, net, rng):
        stdp = make_stdp(net)
        train = rng.random((60, 16)) < 0.5
        before = net.weights.copy()
        net.run_sample(train, stdp=stdp)
        assert not np.array_equal(net.weights, before)

    def test_training_keeps_columns_normalised(self, net, rng):
        stdp = make_stdp(net)
        train = rng.random((60, 16)) < 0.5
        net.run_sample(train, stdp=stdp)
        assert np.allclose(net.weights.sum(axis=0), net.parameters.weight_norm)

    def test_normalize_false_skips_normalisation(self, net, rng):
        stdp = make_stdp(net)
        train = rng.random((60, 16)) < 0.5
        net.run_sample(train, stdp=stdp, normalize=False)
        sums = net.weights.sum(axis=0)
        assert not np.allclose(sums, net.parameters.weight_norm)

    def test_shape_validation(self, net):
        with pytest.raises(ValueError):
            net.run_sample(np.zeros((10, 5), dtype=bool))


class TestBatchedNetwork:
    def test_run_batch_matches_run_sample_loop(self):
        rng = np.random.default_rng(8)
        params = NetworkParameters(n_input=30, n_neurons=12)
        source = DiehlCookNetwork(params, rng=rng)
        trains = rng.random((5, 20, 30)) < 0.2
        stack = np.stack([
            np.clip(source.weights + rng.normal(0, 0.02, source.weights.shape), 0, 1)
            for _ in range(3)
        ])
        batched = DiehlCookNetwork(params, init_weights=False, batch_shape=(3, 5))
        batched.neurons.theta = np.broadcast_to(
            source.neurons.theta, (3, 5, 12)
        ).copy()
        batched.set_weights(stack)
        counts = batched.run_batch(trains)
        scalar = DiehlCookNetwork(params, init_weights=False)
        scalar.neurons.theta = source.neurons.theta.copy()
        for e in range(3):
            scalar.set_weights(stack[e])
            for b in range(5):
                assert np.array_equal(counts[e, b], scalar.run_sample(trains[b]))

    def test_batched_step_accepts_batched_input(self):
        params = NetworkParameters(n_input=10, n_neurons=6)
        net = DiehlCookNetwork(params, rng=np.random.default_rng(0), batch_shape=(4,))
        spikes = net.step(np.ones((4, 10), dtype=bool), adapt=False)
        assert spikes.shape == (4, 6)

    def test_run_sample_rejected_on_batched_network(self):
        net = DiehlCookNetwork(
            NetworkParameters(n_input=10, n_neurons=6),
            init_weights=False,
            batch_shape=(2,),
        )
        with pytest.raises(ValueError, match="run_batch"):
            net.run_sample(np.zeros((5, 10), dtype=bool))

    def test_run_batch_requires_batched_network(self):
        net = DiehlCookNetwork(
            NetworkParameters(n_input=10, n_neurons=6), init_weights=False
        )
        with pytest.raises(ValueError):
            net.run_batch(np.zeros((2, 5, 10), dtype=bool))

    def test_weight_stack_validation(self):
        net = DiehlCookNetwork(
            NetworkParameters(n_input=10, n_neurons=6),
            init_weights=False,
            batch_shape=(3, 2),
        )
        with pytest.raises(ValueError):
            net.set_weights(np.zeros((4, 10, 6)))  # wrong stack depth
        net.set_weights(np.zeros((3, 10, 6)))
        net.set_weights(np.zeros((10, 6)))  # shared matrix always allowed

    def test_set_batch_shape_roundtrip(self):
        params = NetworkParameters(n_input=10, n_neurons=6)
        net = DiehlCookNetwork(params, rng=np.random.default_rng(1))
        theta = net.neurons.theta.copy()
        net.set_batch_shape((2, 4))
        assert net.batch_shape == (2, 4)
        assert net.g_excitatory.g.shape == (2, 4, 6)
        net.set_batch_shape(())
        assert np.array_equal(net.neurons.theta, theta)

    def test_init_weights_false_skips_rng(self):
        params = NetworkParameters(n_input=10, n_neurons=6)
        rng = np.random.default_rng(5)
        state_before = rng.bit_generator.state
        net = DiehlCookNetwork(params, rng=rng, init_weights=False)
        assert rng.bit_generator.state == state_before
        assert not net.weights.any()
        assert not net.neurons.theta.any()

"""Tests of the DRAM refresh model."""

import pytest

from repro.dram.refresh import RefreshModel, RefreshParameters
from repro.dram.specs import LPDDR3_1600_4GB


@pytest.fixture
def model():
    return RefreshModel(LPDDR3_1600_4GB)


class TestParameters:
    def test_defaults_valid(self):
        RefreshParameters().validate()

    def test_refi_derivation(self):
        p = RefreshParameters(t_refw_ms=64.0, commands_per_window=8192)
        # 64 ms / 8192 = 7.8125 us
        assert p.t_refi_ns == pytest.approx(7812.5)

    @pytest.mark.parametrize(
        "kwargs", [{"t_refw_ms": 0}, {"commands_per_window": 0}, {"t_rfc_ns": 0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RefreshParameters(**kwargs).validate()


class TestVoltageEffects:
    def test_window_shrinks_at_reduced_voltage(self, model):
        assert model.refresh_window_ms(1.025) < model.refresh_window_ms(1.35)

    def test_nominal_window_unchanged(self, model):
        assert model.refresh_window_ms(1.35) == pytest.approx(64.0)

    def test_command_energy_scales_v_squared(self, model):
        ratio = model.energy_per_command_nj(1.025) / model.energy_per_command_nj(1.35)
        assert ratio == pytest.approx((1.025 / 1.35) ** 2)

    def test_bandwidth_overhead_small_but_grows(self, model):
        nominal = model.bandwidth_overhead(1.35)
        reduced = model.bandwidth_overhead(1.025)
        assert 0 < nominal < 0.05  # refresh is a few percent of time
        assert reduced > nominal  # shorter window -> more frequent refresh


class TestEnergy:
    def test_energy_proportional_to_duration(self, model):
        one_ms = model.refresh_energy_nj(1e6, 1.35)
        two_ms = model.refresh_energy_nj(2e6, 1.35)
        assert two_ms == pytest.approx(2 * one_ms)

    def test_negative_duration_rejected(self, model):
        with pytest.raises(ValueError):
            model.refresh_energy_nj(-1.0, 1.35)

    def test_refresh_power_voltage_tradeoff(self, model):
        # Energy per command drops ~V^2 but the interval also shrinks;
        # the net average power must stay positive and finite.
        p_nom = model.refresh_power_mw(1.35)
        p_low = model.refresh_power_mw(1.025)
        assert p_nom > 0 and p_low > 0

"""Tests of the conductance-based synapse model."""

import numpy as np
import pytest

from repro.snn.synapses import ConductanceParameters, SynapticConductance


class TestParameters:
    def test_defaults_valid(self):
        ConductanceParameters().validate()

    def test_bad_tau_rejected(self):
        with pytest.raises(ValueError):
            ConductanceParameters(tau_excitatory_ms=0).validate()


class TestConductance:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            SynapticConductance(0, tau_ms=1.0)
        with pytest.raises(ValueError):
            SynapticConductance(5, tau_ms=-1.0)

    def test_starts_at_zero(self):
        g = SynapticConductance(4, tau_ms=2.0)
        assert np.all(g.g == 0.0)

    def test_injection_adds(self):
        g = SynapticConductance(4, tau_ms=2.0)
        g.step(np.full(4, 0.5))
        assert np.all(g.g == pytest.approx(0.5))

    def test_exponential_decay(self):
        # Section II-A: the conductance decreases exponentially between
        # presynaptic spikes.
        g = SynapticConductance(1, tau_ms=2.0, dt_ms=1.0)
        g.step(np.array([1.0]))
        v1 = g.step()[0]
        v2 = g.step()[0]
        assert v1 == pytest.approx(np.exp(-0.5))
        assert v2 / v1 == pytest.approx(np.exp(-0.5))

    def test_reset_state(self):
        g = SynapticConductance(3, tau_ms=1.0)
        g.step(np.ones(3))
        g.reset_state()
        assert np.all(g.g == 0.0)


class TestWeightInjection:
    def test_spike_adds_weight_column_sums(self):
        # Section II-A: conductance "increases by weight w when a
        # presynaptic spike arrives".
        g = SynapticConductance(2, tau_ms=1.0)
        weights = np.array([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]])
        spikes = np.array([1.0, 0.0, 1.0])
        g.inject_through_weights(weights, spikes)
        assert g.g[0] == pytest.approx(0.1 + 0.5)
        assert g.g[1] == pytest.approx(0.2 + 0.6)

    def test_no_spikes_only_decays(self):
        g = SynapticConductance(2, tau_ms=1.0)
        g.g[:] = 1.0
        weights = np.ones((3, 2))
        g.inject_through_weights(weights, np.zeros(3))
        assert np.all(g.g == pytest.approx(np.exp(-1.0)))

    def test_shape_validation(self):
        g = SynapticConductance(2, tau_ms=1.0)
        with pytest.raises(ValueError):
            g.inject_through_weights(np.ones((3, 5)), np.zeros(3))
        with pytest.raises(ValueError):
            g.inject_through_weights(np.ones((3, 2)), np.zeros(4))

"""Tests of the conductance-based synapse model."""

import numpy as np
import pytest

from repro.snn.synapses import ConductanceParameters, SynapticConductance


class TestParameters:
    def test_defaults_valid(self):
        ConductanceParameters().validate()

    def test_bad_tau_rejected(self):
        with pytest.raises(ValueError):
            ConductanceParameters(tau_excitatory_ms=0).validate()


class TestConductance:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            SynapticConductance(0, tau_ms=1.0)
        with pytest.raises(ValueError):
            SynapticConductance(5, tau_ms=-1.0)

    def test_starts_at_zero(self):
        g = SynapticConductance(4, tau_ms=2.0)
        assert np.all(g.g == 0.0)

    def test_injection_adds(self):
        g = SynapticConductance(4, tau_ms=2.0)
        g.step(np.full(4, 0.5))
        assert np.all(g.g == pytest.approx(0.5))

    def test_exponential_decay(self):
        # Section II-A: the conductance decreases exponentially between
        # presynaptic spikes.
        g = SynapticConductance(1, tau_ms=2.0, dt_ms=1.0)
        g.step(np.array([1.0]))
        v1 = g.step()[0]
        v2 = g.step()[0]
        assert v1 == pytest.approx(np.exp(-0.5))
        assert v2 / v1 == pytest.approx(np.exp(-0.5))

    def test_reset_state(self):
        g = SynapticConductance(3, tau_ms=1.0)
        g.step(np.ones(3))
        g.reset_state()
        assert np.all(g.g == 0.0)


class TestWeightInjection:
    def test_spike_adds_weight_column_sums(self):
        # Section II-A: conductance "increases by weight w when a
        # presynaptic spike arrives".
        g = SynapticConductance(2, tau_ms=1.0)
        weights = np.array([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]])
        spikes = np.array([1.0, 0.0, 1.0])
        g.inject_through_weights(weights, spikes)
        assert g.g[0] == pytest.approx(0.1 + 0.5)
        assert g.g[1] == pytest.approx(0.2 + 0.6)

    def test_no_spikes_only_decays(self):
        g = SynapticConductance(2, tau_ms=1.0)
        g.g[:] = 1.0
        weights = np.ones((3, 2))
        g.inject_through_weights(weights, np.zeros(3))
        assert np.all(g.g == pytest.approx(np.exp(-1.0)))

    def test_shape_validation(self):
        g = SynapticConductance(2, tau_ms=1.0)
        with pytest.raises(ValueError):
            g.inject_through_weights(np.ones((3, 5)), np.zeros(3))
        with pytest.raises(ValueError):
            g.inject_through_weights(np.ones((3, 2)), np.zeros(4))


class TestBatchedConductance:
    def test_batched_decay_matches_scalar(self):
        batched = SynapticConductance(4, tau_ms=2.0, batch_shape=(3,))
        scalar = SynapticConductance(4, tau_ms=2.0)
        injected = np.arange(12, dtype=float).reshape(3, 4)
        batched.step(injected)
        batched.step(0.5)
        for b in range(3):
            ref = SynapticConductance(4, tau_ms=2.0)
            ref.step(injected[b])
            ref.step(0.5)
            assert np.array_equal(batched.g[b], ref.g)
        assert scalar.g.shape == (4,)

    def test_batched_inject_through_weights(self):
        rng = np.random.default_rng(1)
        weights = rng.random((6, 4))
        spikes = rng.random((3, 6)) < 0.5
        batched = SynapticConductance(4, tau_ms=1.5, batch_shape=(3,))
        batched.inject_through_weights(weights, spikes)
        for b in range(3):
            ref = SynapticConductance(4, tau_ms=1.5)
            ref.inject_through_weights(weights, spikes[b])
            assert np.allclose(batched.g[b], ref.g)

    def test_stacked_weights_injection(self):
        rng = np.random.default_rng(2)
        weights = rng.random((2, 6, 4))
        spikes = rng.random((2, 3, 6)) < 0.5
        batched = SynapticConductance(4, tau_ms=1.5, batch_shape=(2, 3))
        batched.inject_through_weights(weights, spikes)
        for e in range(2):
            for b in range(3):
                ref = SynapticConductance(4, tau_ms=1.5)
                ref.inject_through_weights(weights[e], spikes[e, b])
                assert np.allclose(batched.g[e, b], ref.g)

    def test_shape_mismatch_rejected(self):
        batched = SynapticConductance(4, tau_ms=1.0, batch_shape=(3,))
        with pytest.raises(ValueError):
            batched.inject_through_weights(np.ones((6, 4)), np.ones(6, dtype=bool))

    def test_set_batch_shape_resets(self):
        g = SynapticConductance(4, tau_ms=1.0)
        g.step(1.0)
        g.set_batch_shape((2,))
        assert g.g.shape == (2, 4)
        assert not g.g.any()


class TestPropagateSpikes:
    def test_matches_matmul(self):
        from repro.snn.synapses import propagate_spikes

        rng = np.random.default_rng(3)
        weights = rng.random((5, 7))
        spikes = rng.random((4, 5)) < 0.4
        assert np.allclose(
            propagate_spikes(weights, spikes), spikes.astype(float) @ weights
        )

    def test_rejects_misaligned_stack(self):
        from repro.snn.synapses import propagate_spikes

        with pytest.raises(ValueError):
            propagate_spikes(np.ones((2, 5, 7)), np.ones((3, 4, 5)))

"""Cluster subsystem tests: protocol, coordinator fault paths, e2e.

The end-to-end tests are the acceptance contract of docs/cluster.md: a
multi-worker distributed sweep produces records *identical in value* to
the serial Runner on the same grid, with each training-side fingerprint
executed exactly once cluster-wide.
"""

import io
import pickle
import socket
import threading
import time

import pytest

from repro import SparkXDConfig
from repro.analysis.export import records_equivalent, run_record_value_dict
from repro.cluster import (
    ClusterClient,
    ClusterExecutor,
    CoordinatorServer,
    PlanFailed,
    SweepPlan,
    WorkerAgent,
    local_worker_threads,
    parse_address,
)
from repro.cluster.protocol import ConnectionClosed, recv_message, send_message
from repro.pipeline import ArtifactStore, Runner, default_stages

TINY = SparkXDConfig.small(
    n_train=40,
    n_test=25,
    n_neurons=12,
    n_steps=30,
    baseline_epochs=1,
    ber_rates=(1e-5, 1e-3),
    accuracy_bound=0.5,
)
GRID = {"voltages": [(1.325,), (1.025,)]}


@pytest.fixture(scope="module")
def serial_sweep():
    """The serial reference: records plus the warmed store."""
    store = ArtifactStore()
    records = Runner(TINY, store=store).run(GRID)
    return records, store


# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_address_forms(self):
        assert parse_address("host:123") == ("host", 123)
        assert parse_address(("host", 123)) == ("host", 123)
        assert parse_address("host") == ("host", 8752)
        assert parse_address(":123") == ("127.0.0.1", 123)

    def test_parse_address_ipv6(self):
        from repro.cluster import format_address

        assert parse_address("[2001:db8::1]:9000") == ("2001:db8::1", 9000)
        assert parse_address("[::1]") == ("::1", 8752)
        assert parse_address("::1") == ("::1", 8752)  # bare literal, no port
        with pytest.raises(ValueError):
            parse_address("[::1")
        # format/parse round trip, v4 and v6
        for addr in (("10.0.0.1", 8752), ("2001:db8::1", 9000)):
            assert parse_address(format_address(addr)) == addr

    def test_message_round_trip_with_blob(self):
        buffer = io.BytesIO()
        send_message(buffer, {"op": "put", "stage": "s"}, blob=b"\x00\xffraw")
        buffer.seek(0)
        payload, blob = recv_message(buffer)
        assert payload == {"op": "put", "stage": "s"}
        assert blob == b"\x00\xffraw"

    def test_message_without_blob(self):
        buffer = io.BytesIO()
        send_message(buffer, {"op": "lease"})
        buffer.seek(0)
        payload, blob = recv_message(buffer)
        assert payload == {"op": "lease"}
        assert blob is None

    def test_truncated_blob_raises(self):
        buffer = io.BytesIO()
        send_message(buffer, {"op": "put"}, blob=b"full payload")
        truncated = io.BytesIO(buffer.getvalue()[:-4])
        with pytest.raises(ConnectionClosed):
            recv_message(truncated)

    def test_closed_connection_raises(self):
        with pytest.raises(ConnectionClosed):
            recv_message(io.BytesIO(b""))


class TestConfigWire:
    def test_round_trip_preserves_fingerprints(self):
        import json

        from repro.pipeline.stages import DRAM_FIELDS
        from repro.pipeline.store import config_fingerprint

        back = SparkXDConfig.from_wire(json.loads(json.dumps(TINY.to_wire())))
        assert back == TINY
        assert config_fingerprint(back, DRAM_FIELDS) == config_fingerprint(
            TINY, DRAM_FIELDS
        )

    def test_custom_dram_spec_survives(self):
        from repro.dram.specs import tiny_spec

        config = TINY.with_overrides(
            dram_spec=tiny_spec().scaled(rows_per_subarray=8), voltages=(1.1,)
        )
        assert SparkXDConfig.from_wire(config.to_wire()) == config

    def test_unknown_field_rejected(self):
        payload = TINY.to_wire()
        payload["not_a_field"] = 1
        with pytest.raises(ValueError, match="not_a_field"):
            SparkXDConfig.from_wire(payload)


# ----------------------------------------------------------------------
# Coordinator fault paths over real sockets, with protocol-level fake
# workers (no training: artifacts are hand-pushed pickles).


@pytest.fixture
def coordinator():
    plan = SweepPlan(
        TINY, {}, ArtifactStore(), lease_timeout=0.3, max_attempts=5
    )
    with CoordinatorServer(plan, plan.store, poll_s=0.05) as server:
        yield server


def _client(server):
    return ClusterClient(server.address, timeout=5.0)


class TestCoordinatorFaultPaths:
    def test_worker_death_requeues_with_exclusion(self, coordinator):
        client = _client(coordinator)
        reply, _ = client.request({"op": "lease", "worker": "dying"})
        job = reply["job"]
        # Register a healthy peer before the lease expires.
        waiting, _ = client.request({"op": "lease", "worker": "healthy"})
        assert "wait" in waiting
        time.sleep(0.35)  # no heartbeat: the lease expires
        retaken, _ = client.request({"op": "lease", "worker": "healthy"})
        assert retaken["job"]["job_id"] == job["job_id"]
        # The dead worker is excluded while the healthy one is live.
        plan_job = coordinator.plan.jobs[job["job_id"]]
        assert "dying" in plan_job.excluded
        assert plan_job.worker == "healthy"
        starved, _ = client.request({"op": "lease", "worker": "dying"})
        assert "wait" in starved

    def test_heartbeat_keeps_lease_alive(self, coordinator):
        client = _client(coordinator)
        reply, _ = client.request({"op": "lease", "worker": "steady"})
        job_id = reply["job"]["job_id"]
        for _ in range(3):
            time.sleep(0.15)
            beat, _ = client.request(
                {"op": "heartbeat", "worker": "steady", "job_id": job_id}
            )
            assert beat["ok"]
        assert coordinator.plan.jobs[job_id].state == "leased"

    def test_duplicate_completion_is_idempotent(self, coordinator):
        client = _client(coordinator)
        reply, _ = client.request({"op": "lease", "worker": "w1"})
        job = reply["job"]
        blob = pickle.dumps({"fake": "artifact"})
        client.request(
            {"op": "put", "stage": job["stage"], "digest": job["digest"]}, blob=blob
        )
        first, _ = client.request(
            {"op": "complete", "worker": "w1", "job_id": job["job_id"]}
        )
        second, _ = client.request(
            {"op": "complete", "worker": "w2", "job_id": job["job_id"]}
        )
        assert first["ok"] and second["ok"]
        assert coordinator.plan.jobs[job["job_id"]].state == "done"

    def test_completion_without_artifact_rejected(self, coordinator):
        client = _client(coordinator)
        reply, _ = client.request({"op": "lease", "worker": "liar"})
        verdict, _ = client.request(
            {"op": "complete", "worker": "liar", "job_id": reply["job"]["job_id"]}
        )
        assert not verdict["ok"]
        assert coordinator.plan.jobs[reply["job"]["job_id"]].state == "pending"

    def test_artifact_round_trip_is_byte_identical(self, coordinator):
        client = _client(coordinator)
        import numpy as np

        artifact = {"weights": np.arange(32, dtype=np.float64).reshape(4, 8)}
        blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        stored, _ = client.request(
            {"op": "put", "stage": "train-baseline", "digest": "d1"}, blob=blob
        )
        assert stored["stored"]
        # Idempotent: re-uploading the same fingerprint is a hit.
        again, _ = client.request(
            {"op": "put", "stage": "train-baseline", "digest": "d1"}, blob=blob
        )
        assert again["ok"] and not again["stored"]
        reply, pulled = client.request(
            {"op": "get", "stage": "train-baseline", "digest": "d1"}
        )
        assert reply["found"]
        assert pulled == blob  # byte-identical round trip

    def test_has_filters_present_keys(self, coordinator):
        client = _client(coordinator)
        client.request(
            {"op": "put", "stage": "s", "digest": "present"},
            blob=pickle.dumps("x"),
        )
        reply, _ = client.request(
            {"op": "has", "keys": [["s", "present"], ["s", "absent"]]}
        )
        assert reply["present"] == [["s", "present"]]

    def test_get_missing_artifact(self, coordinator):
        reply, blob = _client(coordinator).request(
            {"op": "get", "stage": "s", "digest": "nope"}
        )
        assert reply == {"found": False} and blob is None

    def test_unknown_op_is_an_error_reply(self, coordinator):
        from repro.cluster.protocol import ProtocolError

        with pytest.raises(ProtocolError, match="unknown op"):
            _client(coordinator).request({"op": "frobnicate"})

    def test_status_reports_counts(self, coordinator):
        reply, _ = _client(coordinator).request({"op": "status"})
        assert reply["pending"] == len(coordinator.plan.jobs)
        assert reply["failure"] is None


class TestWireCache:
    def test_byte_bounded_lru_eviction(self):
        from repro.cluster.coordinator import _WireCache

        cache = _WireCache(max_bytes=100)
        cache.put(("s", "a"), b"x" * 40)
        cache.put(("s", "b"), b"y" * 40)
        cache.get(("s", "a"))  # refresh: b becomes the LRU victim
        cache.put(("s", "c"), b"z" * 40)  # 120 bytes > budget
        assert cache.get(("s", "b")) is None
        assert cache.get(("s", "a")) == b"x" * 40
        assert cache.get(("s", "c")) == b"z" * 40
        assert cache.total_bytes <= 100

    def test_oversized_blob_is_not_cached(self):
        from repro.cluster.coordinator import _WireCache

        cache = _WireCache(max_bytes=10)
        cache.put(("s", "big"), b"x" * 100)
        assert cache.get(("s", "big")) is None
        assert cache.total_bytes == 0


# ----------------------------------------------------------------------
# End to end: distributed == serial.


class TestDistributedSweep:
    def test_records_identical_to_serial_runner(self, serial_sweep):
        import contextlib

        serial_records, _ = serial_sweep
        executor = ClusterExecutor(
            TINY,
            store=ArtifactStore(),
            lease_timeout=10.0,
            poll_s=0.05,
            wait_timeout=300.0,
        )
        with contextlib.ExitStack() as stack:
            records = executor.run(
                GRID,
                on_ready=lambda address: stack.enter_context(
                    local_worker_threads(address, 2, max_idle_s=60.0)
                ),
            )

        assert records_equivalent(serial_records, records)
        # Training-side fingerprints executed exactly once cluster-wide.
        plan = executor.last_plan
        training_jobs = [
            j for j in plan.jobs.values() if j.stage != "dram-eval"
        ]
        assert len(training_jobs) == 3
        assert all(j.attempts == 1 and j.state == "done" for j in training_jobs)
        # Placement/transfer stats surfaced in the records.
        cluster_keys = [
            key
            for record in records
            for key in record.stage_timings
            if key.startswith("cluster/")
        ]
        assert any(key.endswith(":worker") for key in cluster_keys)
        assert any(key.endswith(":sync_s") for key in cluster_keys)

    def test_fresh_worker_pulls_upstream_artifacts(self, serial_sweep):
        serial_records, serial_store = serial_sweep
        # Prime a store with the training chain only: the dram jobs'
        # upstream artifacts exist on the coordinator but not on the
        # (fresh, empty) worker — it must pull all three.
        store = ArtifactStore()
        for stage in default_stages()[:-1]:
            digest = stage.cache_key(TINY)
            store.put(stage.name, digest, serial_store.get(stage.name, digest))
        import contextlib

        executor = ClusterExecutor(
            TINY, store=store, lease_timeout=10.0, poll_s=0.05, wait_timeout=300.0
        )
        agents = []
        with contextlib.ExitStack() as stack:
            records = executor.run(
                GRID,
                on_ready=lambda address: agents.extend(
                    stack.enter_context(
                        local_worker_threads(address, 1, max_idle_s=60.0)
                    )
                ),
            )
        assert records_equivalent(serial_records, records)
        (agent,) = agents
        assert agent.stats.artifacts_pulled == 3  # baseline, training, tolerance
        assert agent.stats.artifacts_pushed == 2  # the two dram-eval artifacts
        assert [j.stage for j in executor.last_plan.jobs.values()] == [
            "dram-eval",
            "dram-eval",
        ]

    def test_runner_delegates_to_cluster(self, serial_sweep):
        serial_records, _ = serial_sweep
        # Pre-pick a port so workers can be launched before the
        # coordinator binds (they retry until it appears).
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        address = ("127.0.0.1", port)
        with local_worker_threads(address, 2, max_idle_s=60.0):
            runner = Runner(
                TINY,
                store=ArtifactStore(),
                coordinator=address,
                cluster_options={
                    "lease_timeout": 10.0,
                    "poll_s": 0.05,
                    "wait_timeout": 300.0,
                },
            )
            records = runner.run(GRID)
        assert records_equivalent(serial_records, records)

    def test_cluster_options_require_coordinator(self):
        with pytest.raises(ValueError, match="coordinator"):
            Runner(TINY, cluster_options={"lease_timeout": 5.0})

    def test_always_failing_job_fails_the_sweep(self, monkeypatch):
        from repro.pipeline import stages as stages_module

        def explode(self, context, artifacts):
            raise RuntimeError("injected training failure")

        monkeypatch.setattr(
            stages_module.TrainBaselineStage, "run", explode
        )
        import contextlib

        executor = ClusterExecutor(
            TINY,
            store=ArtifactStore(),
            lease_timeout=10.0,
            max_attempts=2,
            poll_s=0.05,
            wait_timeout=120.0,
        )
        with contextlib.ExitStack() as stack:
            with pytest.raises(PlanFailed, match="train-baseline"):
                executor.run(
                    GRID,
                    on_ready=lambda address: stack.enter_context(
                        local_worker_threads(address, 2, max_idle_s=60.0)
                    ),
                )

    def test_plan_failure_shuts_workers_down_gracefully(self):
        """A failed plan must deliver shutdown, not look unreachable."""
        plan = SweepPlan(
            TINY, {}, ArtifactStore(), lease_timeout=5.0, max_attempts=1
        )
        with CoordinatorServer(plan, plan.store, poll_s=0.05) as server:
            client = ClusterClient(server.address, timeout=5.0)
            reply, _ = client.request({"op": "lease", "worker": "crashy"})
            client.request({
                "op": "fail", "worker": "crashy",
                "job_id": reply["job"]["job_id"], "error": "boom",
            })
            assert plan.failed  # retry budget (1) exhausted
            agent = WorkerAgent(server.address, max_idle_s=10.0, retry_s=0.05)
            started = time.monotonic()
            stats = agent.run_forever()
            # Graceful: one lease round trip, not an unreachability
            # retry loop running out the idle budget.
            assert time.monotonic() - started < 5.0
            assert any("shut the sweep down" in e for e in stats.errors)
            assert not any("unreachable" in e for e in stats.errors)

    def test_worker_gives_up_on_dead_coordinator(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead = probe.getsockname()[1]
        agent = WorkerAgent(("127.0.0.1", dead), max_idle_s=0.3, retry_s=0.05)
        started = time.monotonic()
        stats = agent.run_forever()
        assert time.monotonic() - started < 5.0
        assert stats.jobs_done == 0
        assert any("unreachable" in e for e in stats.errors)

    def test_fully_cached_sweep_needs_no_workers(self, serial_sweep):
        serial_records, serial_store = serial_sweep
        executor = ClusterExecutor(
            TINY, store=serial_store, lease_timeout=5.0, wait_timeout=30.0
        )
        records = executor.run(GRID)  # no workers connected at all
        assert records_equivalent(serial_records, records)
        assert executor.last_plan.jobs == {}


class TestClusterCLI:
    @pytest.mark.slow
    def test_cluster_sweep_cli_matches_serial(self, capsys):
        """``repro cluster sweep`` with real worker subprocesses."""
        import json

        from repro.cli import main
        from repro.pipeline.runner import RunRecord

        exit_code = main([
            "cluster", "sweep",
            "--neurons", "12", "--train", "40", "--test", "25",
            "--steps", "30", "--bound", "0.5",
            "--voltages", "1.325", "1.025",
            "--workers", "2", "--lease-s", "15", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert len(payload) == 2
        cli_records = [RunRecord.from_dict(entry) for entry in payload]
        # Serial reference on the exact config the CLI builds.
        cli_base = SparkXDConfig.small(
            n_neurons=12, n_train=40, n_test=25, n_steps=30,
            accuracy_bound=0.5, seed=42,
        )
        reference = Runner(cli_base, store=ArtifactStore()).run(
            {"voltages": [(1.325,), (1.025,)]}
        )
        assert records_equivalent(reference, cli_records)


class TestRecordValueHelpers:
    def test_value_dict_drops_execution_fields(self, run_record_factory):
        record = run_record_factory()
        payload = run_record_value_dict(record)
        for key in ("wall_time_s", "cache_hits", "cache_misses", "stage_timings"):
            assert key not in payload
        assert payload["run_id"] == record.run_id

    def test_records_equivalent_ignores_timings(self, run_record_factory):
        a = run_record_factory(wall_time_s=1.0, cache_hits=0)
        b = run_record_factory(wall_time_s=9.0, cache_hits=7)
        assert records_equivalent([a], [b])
        assert not records_equivalent([a], [])
        c = run_record_factory(baseline_accuracy=0.9)
        assert not records_equivalent([a], [c])


# ----------------------------------------------------------------------
# Journal, resume and distribution diagnostics.


@pytest.fixture(scope="module")
def cli_reference():
    """Serial reference records for the exact config the CLI builds."""
    base = SparkXDConfig.small(
        n_neurons=12, n_train=40, n_test=25, n_steps=30,
        accuracy_bound=0.5, seed=42,
    )
    records = Runner(base, store=ArtifactStore()).run(
        {"voltages": [(1.325,), (1.025,)]}
    )
    return base, records


class TestDistributionTimeout:
    def test_no_workers_raises_diagnostic_timeout(self):
        from repro.cluster import DistributionTimeout

        executor = ClusterExecutor(
            TINY, store=ArtifactStore(), wait_timeout=0.3, poll_s=0.05
        )
        with pytest.raises(DistributionTimeout) as info:
            executor.run(GRID)
        error = info.value
        assert isinstance(error, TimeoutError)  # old except clauses still work
        assert error.counts["pending"] == len(executor.last_plan.jobs)
        assert error.worker_ages == {}
        assert "none ever connected" in str(error)

    def test_timeout_reports_last_worker_contact(self):
        from repro.cluster import DistributionTimeout

        executor = ClusterExecutor(
            TINY,
            store=ArtifactStore(),
            wait_timeout=0.8,
            lease_timeout=30.0,
            poll_s=0.05,
        )

        def poke(address):
            # One worker leases a job and is never heard from again.
            ClusterClient(address, timeout=5.0).request(
                {"op": "lease", "worker": "ghost"}
            )

        with pytest.raises(DistributionTimeout) as info:
            executor.run(GRID, on_ready=poke)
        error = info.value
        assert "ghost" in error.worker_ages
        assert error.counts["leased"] == 1
        assert "ghost" in str(error) and "seen" in str(error)


class TestJournalResume:
    """Coordinator crash -> --resume: identical records, zero re-runs."""

    def test_interrupted_sweep_resumes_without_reexecution(
        self, serial_sweep, tmp_path
    ):
        import contextlib

        from repro.cluster import CoordinatorServer, SweepJournal, SweepPlan

        serial_records, _ = serial_sweep
        root = tmp_path / "cache"
        journal_path = root / "journal.jsonl"

        # ---- Phase 1: a sweep that dies after 2 of 5 jobs. ----------
        store1 = ArtifactStore(root)
        journal1 = SweepJournal(journal_path)
        plan1 = SweepPlan(
            TINY, GRID, store1, lease_timeout=10.0, journal=journal1
        )
        n_jobs = len(plan1.jobs)
        with CoordinatorServer(plan1, store1, poll_s=0.05) as server:
            agent = WorkerAgent(
                server.address, name="mortal", max_jobs=2, max_idle_s=30.0
            )
            agent.run_forever()  # returns after 2 completed jobs
        journal1.close()  # the "crash": server gone, journal on disk
        assert agent.stats.jobs_done == 2
        done_phase1 = [j for j in plan1.jobs.values() if j.state == "done"]
        assert len(done_phase1) == 2

        # ---- Phase 2: restart with --resume semantics. --------------
        store2 = ArtifactStore(root)  # fresh instance, same disk
        executor = ClusterExecutor(
            TINY,
            store=store2,
            lease_timeout=10.0,
            poll_s=0.05,
            wait_timeout=300.0,
            journal=journal_path,
            resume=True,
        )
        with contextlib.ExitStack() as stack:
            records = executor.run(
                GRID,
                on_ready=lambda address: stack.enter_context(
                    local_worker_threads(address, 1, max_idle_s=60.0)
                ),
            )

        # Value-identical to an uninterrupted serial run.
        assert records_equivalent(serial_records, records)
        plan2 = executor.last_plan
        assert len(plan2.jobs) == n_jobs  # the whole sweep is visible
        assert plan2.replayed_done == 2
        for job in done_phase1:
            resumed = plan2.jobs[job.job_id]
            assert resumed.state == "done"
            assert resumed.attempts == 0  # never re-leased
            assert resumed.worker == "mortal"  # attribution survives
        # Zero re-executions of journaled-done fingerprints: the
        # resumed coordinator accepted uploads only for the 3 jobs
        # phase 1 never finished.
        assert store2.stats.puts == n_jobs - 2

    def test_resumed_fully_done_sweep_needs_no_workers(
        self, serial_sweep, tmp_path
    ):
        import contextlib

        from repro.cluster import SweepJournal

        serial_records, _ = serial_sweep
        root = tmp_path / "cache"
        journal_path = root / "journal.jsonl"
        store = ArtifactStore(root)
        executor = ClusterExecutor(
            TINY,
            store=store,
            lease_timeout=10.0,
            poll_s=0.05,
            wait_timeout=300.0,
            journal=journal_path,
        )
        with contextlib.ExitStack() as stack:
            first = executor.run(
                GRID,
                on_ready=lambda address: stack.enter_context(
                    local_worker_threads(address, 2, max_idle_s=60.0)
                ),
            )
        assert records_equivalent(serial_records, first)

        # Resume after completion: everything replays, nothing runs.
        resumed = ClusterExecutor(
            TINY,
            store=ArtifactStore(root),
            wait_timeout=30.0,
            journal=journal_path,
            resume=True,
        )
        records = resumed.run(GRID)  # no workers connected at all
        assert records_equivalent(serial_records, records)
        plan = resumed.last_plan
        assert all(job.state == "done" for job in plan.jobs.values())
        assert all(job.attempts == 0 for job in plan.jobs.values())
        # The pre-crash placement stats flow into the resumed records.
        cluster_keys = [
            key
            for record in records
            for key in record.stage_timings
            if key.startswith("cluster/")
        ]
        assert any(key.endswith(":sync_bytes") for key in cluster_keys)


class TestKillResumeSubprocess:
    @pytest.mark.slow
    def test_sigkill_mid_sweep_then_resume_matches_serial(
        self, cli_reference, tmp_path
    ):
        """The operational recipe end to end: ``cluster sweep --journal``
        SIGKILLed mid-run, restarted with ``--resume``, records
        value-identical to serial and no fingerprint executed twice."""
        import json
        import os
        import signal
        import subprocess
        import sys
        import time as _time
        from pathlib import Path

        import repro
        from repro.pipeline.runner import RunRecord

        base, serial_records = cli_reference
        cache = tmp_path / "cache"
        journal = cache / "journal.jsonl"
        out = tmp_path / "records.json"
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        command = [
            sys.executable, "-m", "repro", "cluster", "sweep",
            "--neurons", "12", "--train", "40", "--test", "25",
            "--steps", "30", "--bound", "0.5",
            "--voltages", "1.325", "1.025",
            "--workers", "2", "--lease-s", "15", "--max-idle-s", "5",
            "--cache-dir", str(cache), "--journal",
            "--out", str(out),
        ]

        def journal_done_count():
            if not journal.exists():
                return 0
            return sum(
                1 for line in journal.read_text().splitlines()
                if '"event": "done"' in line or '"event":"done"' in line
            )

        proc = subprocess.Popen(
            command, env=env, stdout=subprocess.DEVNULL
        )
        try:
            # SIGKILL the coordinator at ~50% of the 5-job sweep.
            deadline = _time.monotonic() + 300.0
            while _time.monotonic() < deadline:
                if journal_done_count() >= 2 or proc.poll() is not None:
                    break
                _time.sleep(0.2)
            killed = proc.poll() is None
            if killed:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30.0)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup path
                proc.kill()
        assert journal.exists()

        resumed = subprocess.run(
            command + ["--resume"], env=env,
            stdout=subprocess.DEVNULL, timeout=600.0,
        )
        assert resumed.returncode == 0
        records = [
            RunRecord.from_dict(entry) for entry in json.loads(out.read_text())
        ]
        assert records_equivalent(serial_records, records)
        # No (stage, digest) was executed twice across both lives.
        done = [
            (event["stage"], event["digest"])
            for event in map(json.loads, journal.read_text().splitlines())
            if event.get("event") == "done"
        ]
        assert len(done) == len(set(done))
        if killed:
            assert len(done) >= 2  # phase 1 really contributed


class TestWorkerAffinityE2E:
    def test_workers_report_holdings_and_get_affine_jobs(self, serial_sweep):
        """With chains for two seeds and one worker per seed, affinity
        keeps every dram-eval job on the worker already holding its
        upstream artifacts — zero dram-side pulls."""
        import contextlib

        serial_records, serial_store = serial_sweep
        # Warm the coordinator with BOTH training chains so only the
        # dram-eval jobs distribute (they are all ready at once), and
        # pre-seed each worker's local store with one seed's chain.
        store = ArtifactStore()
        for stage in default_stages()[:-1]:
            digest = stage.cache_key(TINY)
            store.put(stage.name, digest, serial_store.get(stage.name, digest))
        worker_store = ArtifactStore()
        for stage in default_stages()[:-1]:
            digest = stage.cache_key(TINY)
            worker_store.put(
                stage.name, digest, serial_store.get(stage.name, digest)
            )

        executor = ClusterExecutor(
            TINY, store=store, lease_timeout=10.0, poll_s=0.05,
            wait_timeout=300.0,
        )
        agents = []
        with contextlib.ExitStack() as stack:

            def launch(address):
                agent = WorkerAgent(
                    address, name="warm", store=worker_store, max_idle_s=60.0
                )
                # Tell the scheduler what this worker already holds.
                agent._holding.update(
                    (stage.name, stage.cache_key(TINY))
                    for stage in default_stages()[:-1]
                )
                thread = threading.Thread(target=agent.run_forever, daemon=True)
                thread.start()
                agents.append(agent)
                stack.callback(thread.join, 10.0)
                stack.callback(agent.stop)

            records = executor.run(GRID, on_ready=launch)
        assert records_equivalent(serial_records, records)
        (agent,) = agents
        # The warm worker held every upstream artifact: nothing pulled.
        assert agent.stats.artifacts_pulled == 0
        assert agent.stats.bytes_pulled == 0
        assert agent.stats.jobs_done == 2

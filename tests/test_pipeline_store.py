"""Tests of the content-addressed artifact store and config fingerprints."""

import pytest

from repro import SparkXDConfig
from repro.pipeline.stages import (
    BASELINE_FIELDS,
    DRAM_FIELDS,
    TOLERANCE_FIELDS,
    TRAINING_FIELDS,
)
from repro.pipeline.store import (
    MISS,
    ArtifactStore,
    config_fingerprint,
    fingerprint,
)


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fingerprint({"a": 1, "b": (2, 3)}) == fingerprint({"a": 1, "b": (2, 3)})

    def test_key_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_value_change_changes_digest(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_dataclasses_are_canonicalised(self):
        cfg = SparkXDConfig.small()
        a = config_fingerprint(cfg, ("dram_spec",))
        b = config_fingerprint(cfg.with_overrides(seed=99), ("dram_spec",))
        assert a == b  # dram_spec unchanged -> same digest


class TestStageFieldGroups:
    """The cache-soundness invariants the stage chain relies on."""

    def test_fields_grow_monotonically(self):
        assert set(BASELINE_FIELDS) < set(TRAINING_FIELDS)
        assert set(TRAINING_FIELDS) < set(TOLERANCE_FIELDS)
        assert set(TOLERANCE_FIELDS) < set(DRAM_FIELDS)

    def test_dram_fields_cover_every_config_field(self):
        import dataclasses

        # ``engine`` is deliberately fingerprint-neutral: batched and
        # sequential execution produce identical results (the
        # repro.engine equivalence guarantee), so flipping the switch
        # must keep hitting the same cache entries.
        assert set(DRAM_FIELDS) == {
            f.name for f in dataclasses.fields(SparkXDConfig)
        } - {"engine"}

    def test_dram_side_override_keeps_training_fingerprint(self):
        cfg = SparkXDConfig.small()
        swept = cfg.with_overrides(
            voltages=(1.175,), weak_cell_sigma=0.3, mapping_policy="baseline"
        )
        assert config_fingerprint(cfg, TOLERANCE_FIELDS) == config_fingerprint(
            swept, TOLERANCE_FIELDS
        )
        assert config_fingerprint(cfg, DRAM_FIELDS) != config_fingerprint(
            swept, DRAM_FIELDS
        )

    def test_training_side_override_invalidates(self):
        cfg = SparkXDConfig.small()
        for override in ({"seed": 99}, {"ber_rates": (1e-4,)}, {"dataset": "fashion"}):
            changed = cfg.with_overrides(**override)
            assert config_fingerprint(cfg, TRAINING_FIELDS) != config_fingerprint(
                changed, TRAINING_FIELDS
            ), override


class TestArtifactStore:
    def test_miss_then_hit(self):
        store = ArtifactStore()
        assert store.get("stage", "abc") is MISS
        store.put("stage", "abc", {"x": 1})
        assert store.get("stage", "abc") == {"x": 1}
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.puts == 1

    def test_contains_does_not_touch_stats(self):
        store = ArtifactStore()
        store.put("stage", "abc", 1)
        assert ("stage", "abc") in store
        assert ("stage", "zzz") not in store
        assert store.stats.hits == 0
        assert store.stats.misses == 0

    def test_different_digest_misses(self):
        store = ArtifactStore()
        store.put("stage", "abc", 1)
        assert store.get("stage", "def") is MISS

    def test_clear_drops_memory(self):
        store = ArtifactStore()
        store.put("stage", "abc", 1)
        store.clear()
        assert store.get("stage", "abc") is MISS

    def test_disk_persistence_across_instances(self, tmp_path):
        first = ArtifactStore(tmp_path / "cache")
        first.put("stage", "abc", {"weights": [1, 2, 3]})
        second = ArtifactStore(tmp_path / "cache")
        assert second.get("stage", "abc") == {"weights": [1, 2, 3]}
        assert second.stats.hits == 1

    def test_disk_store_contains_without_loading(self, tmp_path):
        first = ArtifactStore(tmp_path / "cache")
        first.put("stage", "abc", 1)
        second = ArtifactStore(tmp_path / "cache")
        assert ("stage", "abc") in second
        assert not second._memory  # not loaded into memory yet
        # ...but the disk entry still counts as cached.
        assert len(second) == 1

    def test_len_counts_disk_entries(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("stage", "d0", 1)
        store.put("other", "d1", 2)
        # A fresh instance over the same root sees both artifacts
        # without faulting anything into memory.
        fresh = ArtifactStore(tmp_path / "cache")
        assert len(fresh) == 2
        # Memory and disk twins of one key are counted once.
        fresh.get("stage", "d0")
        assert len(fresh) == 2
        # A memory-only store still counts its map.
        memory = ArtifactStore()
        memory.put("stage", "d0", 1)
        assert len(memory) == 1


class TestPrune:
    def _filled_store(self, tmp_path, n=4, size=2000):
        store = ArtifactStore(tmp_path / "cache")
        for i in range(n):
            store.put("stage", f"digest{i}", b"x" * size)
        return store

    def test_prune_evicts_oldest_first(self, tmp_path):
        import os
        import time

        store = self._filled_store(tmp_path)
        # Make mtimes strictly ordered regardless of filesystem precision.
        files = sorted((tmp_path / "cache" / "stage").glob("*.pkl"))
        now = time.time()
        for i in range(4):
            os.utime(tmp_path / "cache" / "stage" / f"digest{i}.pkl",
                     (now + i, now + i))
        total = sum(f.stat().st_size for f in files)
        one_file = total // 4
        report = store.prune(max_bytes=2 * one_file)
        assert report.removed_files == 2
        assert report.kept_files == 2
        # oldest digests evicted, newest kept — and dropped from memory too
        assert ("stage", "digest0") not in store
        assert ("stage", "digest3") in store
        from repro.pipeline.store import MISS

        assert store.get("stage", "digest0") is MISS
        assert store.get("stage", "digest3") == b"x" * 2000

    def test_prune_to_zero_clears_disk(self, tmp_path):
        store = self._filled_store(tmp_path)
        report = store.prune(max_bytes=0)
        assert report.kept_files == 0
        assert report.kept_bytes == 0
        assert not list((tmp_path / "cache").glob("*/*.pkl"))

    def test_prune_within_budget_is_noop(self, tmp_path):
        store = self._filled_store(tmp_path)
        report = store.prune(max_bytes=10**9)
        assert report.removed_files == 0
        assert report.freed_bytes == 0
        assert store.get("stage", "digest0") == b"x" * 2000

    def test_prune_requires_disk_store(self):
        with pytest.raises(ValueError):
            ArtifactStore().prune(max_bytes=100)
        with pytest.raises(ValueError):
            ArtifactStore("/tmp").prune(max_bytes=-1)

    def test_get_refreshes_mtime_for_lru(self, tmp_path):
        import os
        import time

        store = self._filled_store(tmp_path, n=2)
        old = time.time() - 1000
        for i in range(2):
            os.utime(tmp_path / "cache" / "stage" / f"digest{i}.pkl", (old, old))
        store.clear()  # force the next get to touch disk
        store.get("stage", "digest0")
        report = store.prune(max_bytes=2500)
        # digest0 was just used, so digest1 is the LRU victim
        assert report.removed_files == 1
        assert ("stage", "digest0") in store
        assert not (tmp_path / "cache" / "stage" / "digest1.pkl").exists()

    def test_report_to_dict(self, tmp_path):
        store = self._filled_store(tmp_path, n=1)
        report = store.prune(max_bytes=10**9)
        assert report.to_dict() == {
            "removed_files": 0,
            "freed_bytes": 0,
            "kept_files": 1,
            "kept_bytes": report.kept_bytes,
            "dry_run": False,
        }

    def test_dry_run_reports_without_deleting(self, tmp_path):
        store = self._filled_store(tmp_path, n=4)
        real_budget = 2 * (tmp_path / "cache" / "stage" / "digest0.pkl").stat().st_size
        preview = store.prune(max_bytes=real_budget, dry_run=True)
        assert preview.dry_run
        assert preview.removed_files == 2
        assert preview.freed_bytes > 0
        # Nothing touched: all four files and memory entries survive.
        assert len(list((tmp_path / "cache").glob("*/*.pkl"))) == 4
        assert all(("stage", f"digest{i}") in store for i in range(4))
        # The preview matches what a real pass then does.
        actual = store.prune(max_bytes=real_budget)
        assert (actual.removed_files, actual.freed_bytes) == (
            preview.removed_files,
            preview.freed_bytes,
        )
        assert not actual.dry_run


class TestConcurrentWriters:
    def test_put_treats_existing_fingerprint_as_hit(self, tmp_path):
        """Losing a write race must not rewrite the published file."""
        import os

        store = ArtifactStore(tmp_path / "cache")
        store.put("stage", "d0", b"first")
        path = tmp_path / "cache" / "stage" / "d0.pkl"
        before = path.stat()
        # A second writer (same content-addressed key) arrives late.
        other = ArtifactStore(tmp_path / "cache")
        other.put("stage", "d0", b"first")
        after = path.stat()
        assert after.st_size == before.st_size
        assert store.get("stage", "d0") == b"first"
        assert other.get("stage", "d0") == b"first"
        # The skip still refreshes the LRU rank of the file.
        old = before.st_mtime - 1000
        os.utime(path, (old, old))
        other.put("stage", "d0", b"first")
        assert path.stat().st_mtime > old

    def test_put_bytes_streams_to_disk_without_unpickling(self, tmp_path):
        import pickle

        store = ArtifactStore(tmp_path / "cache")
        blob = pickle.dumps({"weights": list(range(100))})
        store.put_bytes("stage", "d0", blob)
        # Bytes land verbatim on disk; nothing is pinned in memory.
        path = tmp_path / "cache" / "stage" / "d0.pkl"
        assert path.read_bytes() == blob
        assert not store._memory
        # The artifact loads lazily, and re-uploads are hits.
        assert store.get("stage", "d0") == {"weights": list(range(100))}
        before = path.stat().st_mtime_ns
        store.put_bytes("stage", "d0", blob)
        assert path.read_bytes() == blob
        assert path.stat().st_mtime_ns >= before

    def test_put_bytes_memory_store_falls_back_to_object(self):
        import pickle

        store = ArtifactStore()
        store.put_bytes("stage", "d0", pickle.dumps([1, 2, 3]))
        assert store.get("stage", "d0") == [1, 2, 3]

    def test_many_threads_racing_on_one_key(self, tmp_path):
        import threading

        store = ArtifactStore(tmp_path / "cache")
        payload = {"weights": list(range(500))}
        errors = []

        def writer():
            try:
                local = ArtifactStore(tmp_path / "cache")
                local.put("stage", "shared", payload)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Exactly one published file, no leftover temp files, readable.
        stage_dir = tmp_path / "cache" / "stage"
        assert sorted(p.name for p in stage_dir.iterdir()) == ["shared.pkl"]
        fresh = ArtifactStore(tmp_path / "cache")
        assert fresh.get("stage", "shared") == payload


class TestThreadSafety:
    """One shared store under many threads — the coordinator's shape.

    ``CoordinatorServer`` is a ThreadingTCPServer mutating one store
    from every request thread; the memory map and CacheStats counters
    must therefore be lock-protected read-modify-writes.
    """

    def test_concurrent_puts_and_gets_keep_stats_consistent(self):
        import threading

        store = ArtifactStore()
        n_threads, n_ops = 8, 200
        errors = []

        def hammer(worker_id):
            try:
                for i in range(n_ops):
                    store.put("stage", f"w{worker_id}-{i}", i)
                    assert store.get("stage", f"w{worker_id}-{i}") == i
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Without the internal lock the += read-modify-writes lose
        # updates under contention and these exact totals fail.
        assert store.stats.puts == n_threads * n_ops
        assert store.stats.hits == n_threads * n_ops
        assert store.stats.misses == 0
        assert len(store) == n_threads * n_ops

    def test_concurrent_disk_backed_access(self, tmp_path):
        import threading

        store = ArtifactStore(tmp_path / "cache")
        for i in range(20):
            store.put("stage", f"d{i}", list(range(i)))
        store.clear()  # every get below faults in from disk
        errors = []

        def reader():
            try:
                for i in range(20):
                    assert store.get("stage", f"d{i}") == list(range(i))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.stats.hits == 6 * 20

    def test_store_pickles_without_its_lock(self, tmp_path):
        import pickle

        store = ArtifactStore(tmp_path / "cache")
        store.put("stage", "d0", {"x": 1})
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get("stage", "d0") == {"x": 1}
        clone.put("stage", "d1", 2)  # the restored lock works

    def test_stats_view_shares_bytes_but_not_counters(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("stage", "d0", {"x": 1})
        view = store.stats_view()
        # Same artifacts, same lock, fresh counters.
        assert view._memory is store._memory
        assert view._lock is store._lock
        assert view.get("stage", "d0") == {"x": 1}
        assert view.stats.hits == 1
        assert store.stats.hits == 0  # untouched by the view's traffic
        assert view.get("stage", "gone") is MISS
        assert (view.stats.hits, view.stats.misses) == (1, 1)
        assert (store.stats.hits, store.stats.misses) == (0, 0)
        # Writes through the view land in the shared store.
        view.put("stage", "d1", 2)
        assert store.get("stage", "d1") == 2

"""Tests of the content-addressed artifact store and config fingerprints."""

import pytest

from repro import SparkXDConfig
from repro.pipeline.stages import (
    BASELINE_FIELDS,
    DRAM_FIELDS,
    TOLERANCE_FIELDS,
    TRAINING_FIELDS,
)
from repro.pipeline.store import (
    MISS,
    ArtifactStore,
    config_fingerprint,
    fingerprint,
)


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fingerprint({"a": 1, "b": (2, 3)}) == fingerprint({"a": 1, "b": (2, 3)})

    def test_key_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_value_change_changes_digest(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_dataclasses_are_canonicalised(self):
        cfg = SparkXDConfig.small()
        a = config_fingerprint(cfg, ("dram_spec",))
        b = config_fingerprint(cfg.with_overrides(seed=99), ("dram_spec",))
        assert a == b  # dram_spec unchanged -> same digest


class TestStageFieldGroups:
    """The cache-soundness invariants the stage chain relies on."""

    def test_fields_grow_monotonically(self):
        assert set(BASELINE_FIELDS) < set(TRAINING_FIELDS)
        assert set(TRAINING_FIELDS) < set(TOLERANCE_FIELDS)
        assert set(TOLERANCE_FIELDS) < set(DRAM_FIELDS)

    def test_dram_fields_cover_every_config_field(self):
        import dataclasses

        assert set(DRAM_FIELDS) == {
            f.name for f in dataclasses.fields(SparkXDConfig)
        }

    def test_dram_side_override_keeps_training_fingerprint(self):
        cfg = SparkXDConfig.small()
        swept = cfg.with_overrides(
            voltages=(1.175,), weak_cell_sigma=0.3, mapping_policy="baseline"
        )
        assert config_fingerprint(cfg, TOLERANCE_FIELDS) == config_fingerprint(
            swept, TOLERANCE_FIELDS
        )
        assert config_fingerprint(cfg, DRAM_FIELDS) != config_fingerprint(
            swept, DRAM_FIELDS
        )

    def test_training_side_override_invalidates(self):
        cfg = SparkXDConfig.small()
        for override in ({"seed": 99}, {"ber_rates": (1e-4,)}, {"dataset": "fashion"}):
            changed = cfg.with_overrides(**override)
            assert config_fingerprint(cfg, TRAINING_FIELDS) != config_fingerprint(
                changed, TRAINING_FIELDS
            ), override


class TestArtifactStore:
    def test_miss_then_hit(self):
        store = ArtifactStore()
        assert store.get("stage", "abc") is MISS
        store.put("stage", "abc", {"x": 1})
        assert store.get("stage", "abc") == {"x": 1}
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.puts == 1

    def test_contains_does_not_touch_stats(self):
        store = ArtifactStore()
        store.put("stage", "abc", 1)
        assert ("stage", "abc") in store
        assert ("stage", "zzz") not in store
        assert store.stats.hits == 0
        assert store.stats.misses == 0

    def test_different_digest_misses(self):
        store = ArtifactStore()
        store.put("stage", "abc", 1)
        assert store.get("stage", "def") is MISS

    def test_clear_drops_memory(self):
        store = ArtifactStore()
        store.put("stage", "abc", 1)
        store.clear()
        assert store.get("stage", "abc") is MISS

    def test_disk_persistence_across_instances(self, tmp_path):
        first = ArtifactStore(tmp_path / "cache")
        first.put("stage", "abc", {"weights": [1, 2, 3]})
        second = ArtifactStore(tmp_path / "cache")
        assert second.get("stage", "abc") == {"weights": [1, 2, 3]}
        assert second.stats.hits == 1

    def test_disk_store_contains_without_loading(self, tmp_path):
        first = ArtifactStore(tmp_path / "cache")
        first.put("stage", "abc", 1)
        second = ArtifactStore(tmp_path / "cache")
        assert ("stage", "abc") in second
        assert len(second) == 0  # not loaded into memory yet

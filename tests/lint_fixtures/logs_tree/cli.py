"""CLI surface: stdout is the product, so print() is exempt here."""


def show(records):
    print(len(records), "record(s)")

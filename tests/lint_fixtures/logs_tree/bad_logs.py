"""Deliberate log-discipline violations (parsed by the linter, never run)."""

import logging
from logging import getLogger

LOG = logging.getLogger(__name__)  # named: clean
ROOT = logging.getLogger()  # line 7: naked root logger
ALIASED = getLogger()  # line 8: naked via from-import


def diagnose(value):
    print("value is", value)  # line 12: print diagnostic
    LOG.info("value", extra={"value": value})  # structured: clean


def deliberate():
    print("chosen on purpose")  # lint: disable=log-discipline

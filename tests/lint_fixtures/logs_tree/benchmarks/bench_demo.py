"""Benchmark surface: prints its timing table by design; exempt."""


def report(elapsed_s):
    print(f"elapsed: {elapsed_s:.3f}s")

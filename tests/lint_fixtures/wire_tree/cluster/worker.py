"""Worker-side peer dispatch (lint fixture; never imported)."""


def request_lease():
    return {"op": "lease", "worker": "w"}


def serve(payload):
    op = payload.get("op")
    if op == "peer_get":
        return {"found": True}
    if op == "self_only":
        return {"ok": True}
    return {"error": f"unknown op {op!r}"}


def self_emit():
    # Emitting to one's own dispatch proves nothing about the wire:
    # "self_only" must still be flagged as handler-without-emitter.
    return {"op": "self_only"}

"""HTTP control-plane fixture (lint fixture; never imported).

Deliberate violations for the protocol-consistency HTTP extension:
an emitted path with no ROUTES row, a route no client emits, and a
route naming a handler function that does not exist.
"""

ROUTES = (
    ("GET", "/fleet", "fleet"),
    ("GET", "/sweeps/{sweep_id}", "status"),
    ("POST", "/sweeps/{sweep_id}/cancel", "cancel"),
    ("GET", "/ghost", "ghost"),
)


class ControlPlane:
    def _route_fleet(self, params):
        return {"ok": True}

    def _route_status(self, params):
        return {"ok": True}

    def _route_cancel(self, params):
        return {"ok": True}


class Client:
    def http_request(self, method, path, payload=None):
        return {"method": method, "path": path}

    def fleet(self):
        return self.http_request("GET", "/fleet")

    def status(self, sweep_id):
        return self.http_request("GET", f"/sweeps/{sweep_id}")

    def ghost(self):
        return self.http_request("GET", "/ghost")

    def pause(self, sweep_id):
        # No ROUTES row serves this path: guaranteed 404.
        return self.http_request("POST", f"/sweeps/{sweep_id}/pause")

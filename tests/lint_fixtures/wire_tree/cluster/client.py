"""Wire-protocol emitter side (lint fixture; never imported)."""


def lease():
    return {"op": "lease", "worker": "w"}


def typo():
    return {"op": "leese", "worker": "w"}

"""Wire-protocol emitter side (lint fixture; never imported)."""


def lease():
    return {"op": "lease", "worker": "w"}


def typo():
    return {"op": "leese", "worker": "w"}


def peer_pull():
    return {"op": "peer_get", "stage": "s", "digest": "d"}

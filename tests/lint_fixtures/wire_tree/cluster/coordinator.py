"""Wire-protocol handler side (lint fixture; never imported)."""


def dispatch(payload):
    op = payload.get("op")
    if op == "lease":
        return {"ok": True}
    if op == "orphan":
        return {"ok": True}
    return {"error": f"unknown op {op!r}"}

"""Deliberate workspace-discipline violations (lint fixture; never imported)."""

import numpy as np


def run_fused_loop(drives, ws):
    for t in range(drives.shape[0]):
        scratch = np.zeros_like(drives[t])  # allocator in the step loop
        total = np.add(ws.state, drives[t])  # ufunc without out=
        snapshot = ws.state.copy()  # allocating method call
        ws.state += scratch + total + snapshot
    return ws.state


def run_frozen_pass(drives, ws):
    for t in range(drives.shape[0]):
        np.add(ws.state, drives[t], out=ws.state)  # out= — clean
        lanes = drives[t].sum()  # lint: disable=workspace-discipline
        ws.total += lanes
    return ws.total


def plain_helper(drives):
    # Not a fused/frozen function: per-step allocation is fine here.
    acc = []
    for t in range(drives.shape[0]):
        acc.append(drives[t].copy())
    return np.stack(acc)


def fused_outside_loop(drives, ws):
    # Allocations *outside* the range loop are the intended pattern.
    scratch = np.empty_like(drives[0])
    for t in range(drives.shape[0]):
        np.multiply(ws.state, drives[t], out=scratch)
        ws.state += scratch
    return ws.state

"""Config dataclass (lint fixture; never imported)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SparkXDConfig:
    dataset: str = "mnist"
    n_train: int = 100
    seed: int = 0
    voltage: float = 1.325

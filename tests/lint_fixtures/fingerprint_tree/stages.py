"""Stage with fingerprint violations (lint fixture; never imported)."""

WORKLOAD_FIELDS = ("dataset", "n_train")


class LeakyStage:
    name = "leaky"
    requires = ()
    provides = "leaky"
    fields = WORKLOAD_FIELDS + ("seed",)

    def run(self, context, artifacts):
        cfg = context.config
        data = load(cfg.dataset, cfg.n_train)
        return data, cfg.voltage


def load(name, count):
    return name, count

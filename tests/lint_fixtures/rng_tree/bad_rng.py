"""Deliberate rng-discipline violations (lint fixture; never imported)."""

import random

import numpy as np


def global_state_draw():
    np.random.seed(123)
    return np.random.rand(3)


def unseeded_generator():
    rng = np.random.default_rng()
    return rng.random()


def stdlib_random():
    return random.random()


def suppressed_draw():
    return np.random.rand()  # lint: disable=rng-discipline


def sanctioned(seed=0):
    return np.random.default_rng(seed).random()

"""Deliberate lock-discipline violation (lint fixture; never imported)."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0
        self.peak = 0

    def add(self, amount):
        with self._lock:
            self.total += amount
            if self.total > self.peak:
                self.peak = self.total

    def reset(self):
        self.total = 0

    def clear_peak(self):
        self.peak = 0  # lint: disable=lock-discipline

    def _drain_locked(self):
        self.total = 0

"""Tests of the SEC-DED ECC comparator."""

import numpy as np
import pytest

from repro.errors.ecc import (
    CODE_BITS,
    DATA_BITS,
    ECC_OVERHEAD,
    EccProtectedRepresentation,
    decode_words,
    encode_words,
)
from repro.snn.quantization import FixedPointRepresentation, Float32Representation


@pytest.fixture
def data(rng):
    return rng.integers(0, 2**63, size=32, dtype=np.uint64)


class TestCode:
    def test_overhead_is_one_eighth(self):
        assert ECC_OVERHEAD == pytest.approx(0.125)

    def test_clean_roundtrip(self, data):
        code = encode_words(data)
        decoded, report = decode_words(code)
        assert np.array_equal(decoded, data)
        assert report.corrected_words == 0
        assert report.uncorrectable_words == 0

    def test_codeword_shape(self, data):
        code = encode_words(data)
        assert code.shape == (data.size, CODE_BITS)
        assert set(np.unique(code)) <= {0, 1}

    def test_single_bit_error_corrected_any_position(self, data):
        code = encode_words(data)
        for bit in (0, 1, 31, DATA_BITS - 1, DATA_BITS, CODE_BITS - 1):
            corrupted = code.copy()
            corrupted[0, bit] ^= 1
            decoded, report = decode_words(corrupted)
            assert np.array_equal(decoded, data), f"bit {bit} not corrected"
            assert report.corrected_words == 1

    def test_double_bit_error_detected_not_miscorrected(self, data):
        code = encode_words(data)
        corrupted = code.copy()
        corrupted[0, 3] ^= 1
        corrupted[0, 47] ^= 1
        decoded, report = decode_words(corrupted)
        assert report.uncorrectable_words == 1
        assert report.corrected_words == 0

    def test_independent_words_corrected_independently(self, data):
        code = encode_words(data)
        corrupted = code.copy()
        corrupted[0, 5] ^= 1
        corrupted[1, 9] ^= 1
        decoded, report = decode_words(corrupted)
        assert np.array_equal(decoded, data)
        assert report.corrected_words == 2

    def test_decode_validates_shape(self):
        with pytest.raises(ValueError):
            decode_words(np.zeros((4, 10), dtype=np.uint8))


class TestProtectedRepresentation:
    def test_bits_per_weight_includes_overhead(self):
        rep = EccProtectedRepresentation(Float32Representation())
        assert rep.bits_per_weight == pytest.approx(32 * 9 / 8)

    def test_clean_roundtrip_fp32(self, rng):
        weights = rng.random(100).astype(np.float32)
        rep = EccProtectedRepresentation(Float32Representation())
        restored, report = rep.protected_roundtrip(weights, np.array([], dtype=np.int64))
        assert np.array_equal(restored, weights)
        assert report.corrected_words == 0

    def test_clean_roundtrip_int8(self, rng):
        weights = rng.random(64).astype(np.float32)
        inner = FixedPointRepresentation(bits=8)
        rep = EccProtectedRepresentation(inner)
        restored, _ = rep.protected_roundtrip(weights, np.array([], dtype=np.int64))
        assert np.array_equal(restored, inner.roundtrip(weights))

    def test_sparse_flips_fully_corrected(self, rng):
        # one flip per codeword at most -> everything corrected
        weights = rng.random(16).astype(np.float32)  # 8 codewords
        rep = EccProtectedRepresentation(Float32Representation())
        flips = np.array([w * CODE_BITS + int(rng.integers(CODE_BITS)) for w in range(8)])
        restored, report = rep.protected_roundtrip(weights, flips)
        assert np.array_equal(restored, weights)
        assert report.corrected_words == 8

    def test_dense_flips_break_through(self, rng):
        # two flips in the same codeword are uncorrectable
        weights = rng.random(2).astype(np.float32)  # one codeword
        rep = EccProtectedRepresentation(Float32Representation(sanitize=False))
        restored, report = rep.protected_roundtrip(weights, np.array([3, 40]))
        assert report.uncorrectable_words == 1

    def test_incompatible_inner_width_rejected(self):
        class Odd:
            bits_per_weight = 24

        with pytest.raises(ValueError):
            EccProtectedRepresentation(Odd())

    def test_works_through_error_injector(self, rng):
        from repro.errors.injection import ErrorInjector

        weights = rng.random(128).astype(np.float32)
        rep = EccProtectedRepresentation(Float32Representation())
        injector = ErrorInjector(rep, seed=0)
        # at low BER, nearly all flips are singletons per 72-bit word
        out, _report = injector.inject_uniform(weights, 1e-4)
        out = out.ravel()[: weights.size]
        assert np.count_nonzero(out != weights) <= 2

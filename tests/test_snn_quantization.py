"""Tests of weight storage representations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn.quantization import (
    FixedPointRepresentation,
    Float32Representation,
    make_representation,
    quantization_error,
)


class TestFloat32:
    def test_roundtrip_exact(self, rng):
        weights = rng.random(100).astype(np.float32)
        rep = Float32Representation()
        assert np.array_equal(rep.roundtrip(weights), weights)

    def test_bits_per_weight(self):
        assert Float32Representation().bits_per_weight == 32

    def test_sanitize_flushes_nonfinite(self):
        rep = Float32Representation(sanitize=True)
        words = np.array([0x7FC00000, 0x7F800000, 0x3F800000], dtype=np.uint32)
        decoded = rep.decode(words)  # NaN, +Inf, 1.0
        assert decoded[0] == 0.0
        assert decoded[1] == 0.0
        assert decoded[2] == 1.0

    def test_no_sanitize_keeps_nan(self):
        rep = Float32Representation(sanitize=False)
        decoded = rep.decode(np.array([0x7FC00000], dtype=np.uint32))
        assert np.isnan(decoded[0])

    def test_clip_range_saturates(self):
        rep = Float32Representation(clip_range=(0.0, 1.0))
        words = rep.encode(np.array([-3.0, 0.5, 7.0], dtype=np.float32))
        decoded = rep.decode(words)
        assert decoded.tolist() == [0.0, 0.5, 1.0]

    def test_invalid_clip_range_rejected(self):
        with pytest.raises(ValueError):
            Float32Representation(clip_range=(1.0, 0.0))

    def test_flip_bits_changes_one_bit(self):
        rep = Float32Representation()
        words = rep.encode(np.array([1.0], dtype=np.float32))
        flipped = rep.flip_bits(words, np.array([0]))
        assert np.bitwise_xor(words, flipped)[0] == 1

    def test_storage_bits(self):
        assert Float32Representation().storage_bits(100) == 3200
        with pytest.raises(ValueError):
            Float32Representation().storage_bits(-1)


class TestFixedPoint:
    def test_int8_roundtrip_within_step(self, rng):
        weights = rng.random(200)
        rep = FixedPointRepresentation(bits=8)
        restored = rep.roundtrip(weights)
        assert np.max(np.abs(restored - weights)) <= rep.step / 2 + 1e-9

    def test_extremes_exact(self):
        rep = FixedPointRepresentation(bits=8, w_min=0.0, w_max=1.0)
        assert rep.roundtrip(np.array([0.0]))[0] == 0.0
        assert rep.roundtrip(np.array([1.0]))[0] == 1.0

    def test_encode_clips_out_of_range(self):
        rep = FixedPointRepresentation(bits=8)
        words = rep.encode(np.array([-5.0, 5.0]))
        assert words[0] == 0
        assert words[1] == 255

    def test_step_and_max_flip_error(self):
        rep = FixedPointRepresentation(bits=8, w_min=0.0, w_max=1.0)
        assert rep.step == pytest.approx(1 / 255)
        assert rep.max_flip_error() == pytest.approx(128 / 255)

    def test_int16_has_finer_step(self):
        assert (
            FixedPointRepresentation(bits=16).step
            < FixedPointRepresentation(bits=8).step
        )

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            FixedPointRepresentation(bits=7)
        with pytest.raises(ValueError):
            FixedPointRepresentation(w_min=1.0, w_max=0.0)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_quantisation_idempotent_property(self, value):
        # decode(encode(x)) is a fixed point of the quantiser.
        rep = FixedPointRepresentation(bits=8)
        once = rep.roundtrip(np.array([value]))
        twice = rep.roundtrip(once)
        assert np.array_equal(once, twice)


class TestFactoryAndErrors:
    @pytest.mark.parametrize(
        "name,bits", [("float32", 32), ("fp32", 32), ("int8", 8), ("int16", 16)]
    )
    def test_factory(self, name, bits):
        assert make_representation(name).bits_per_weight == bits

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            make_representation("int4")

    def test_quantization_error_zero_for_float32(self, rng):
        weights = rng.random(50).astype(np.float32)
        max_err, rms = quantization_error(weights, Float32Representation())
        assert max_err == 0.0
        assert rms == 0.0

    def test_quantization_error_bounded_for_int8(self, rng):
        weights = rng.random(50)
        rep = FixedPointRepresentation(bits=8)
        max_err, rms = quantization_error(weights, rep)
        assert 0 < rms <= max_err <= rep.step / 2 + 1e-9

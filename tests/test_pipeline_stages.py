"""Tests of the staged pipeline: stages, caching, facade equivalence."""

import numpy as np
import pytest

from repro import SparkXD, SparkXDConfig
from repro.pipeline import (
    ArtifactStore,
    DramEvalStage,
    ExperimentPipeline,
    PIPELINE_STAGES,
    default_stages,
)

TINY = SparkXDConfig.small(
    n_train=40,
    n_test=25,
    n_neurons=12,
    n_steps=30,
    baseline_epochs=1,
    ber_rates=(1e-5, 1e-3),
    accuracy_bound=0.5,
)


@pytest.fixture(scope="module")
def warm_store():
    """One trained run shared by every test in this module."""
    store = ArtifactStore()
    ExperimentPipeline(TINY, store=store).run()
    return store


class TestStageChain:
    def test_default_chain_order(self):
        names = [stage.name for stage in default_stages()]
        assert names == [
            "train-baseline",
            "fault-aware-train",
            "tolerance-analysis",
            "dram-eval",
        ]

    def test_every_requirement_is_provided_upstream(self):
        provided = set()
        for stage in default_stages():
            assert set(stage.requires) <= provided, stage.name
            provided.add(stage.provides)

    def test_stages_are_registered(self):
        assert set(PIPELINE_STAGES.names()) == {
            "train-baseline",
            "fault-aware-train",
            "tolerance-analysis",
            "dram-eval",
        }

    def test_missing_prerequisite_raises(self):
        pipeline = ExperimentPipeline(TINY, stages=[DramEvalStage()])
        with pytest.raises(ValueError, match="requires artifacts"):
            pipeline.run_stages()

    def test_partial_chain_rejected_by_run(self, warm_store):
        pipeline = ExperimentPipeline(
            TINY, stages=default_stages()[:2], store=warm_store
        )
        with pytest.raises(ValueError, match="produced no"):
            pipeline.run()


@pytest.mark.slow
class TestFacadeEquivalence:
    def test_facade_equals_staged_pipeline_at_fixed_seed(self, warm_store):
        staged = ExperimentPipeline(TINY, store=warm_store).run()
        facade = SparkXD(TINY).run()  # fresh store: recomputes from scratch
        assert np.array_equal(
            staged.baseline_model.weights, facade.baseline_model.weights
        )
        assert np.array_equal(
            staged.improved_model.weights, facade.improved_model.weights
        )
        assert staged.baseline_model.accuracy == facade.baseline_model.accuracy
        assert staged.tolerance == facade.tolerance
        assert staged.training.accuracy_per_rate == facade.training.accuracy_per_rate
        assert set(staged.outcomes) == set(facade.outcomes)
        for v in staged.outcomes:
            assert staged.outcomes[v] == facade.outcomes[v]
        assert staged.summary() == facade.summary()

    def test_facade_accepts_shared_store(self, warm_store):
        before = warm_store.stats.snapshot()
        result = SparkXD(TINY, store=warm_store).run()
        assert warm_store.stats.hits - before.hits == 4
        assert warm_store.stats.misses == before.misses
        assert result.summary()


@pytest.mark.slow
class TestCaching:
    def test_full_rerun_hits_every_stage(self, warm_store):
        before = warm_store.stats.snapshot()
        ExperimentPipeline(TINY, store=warm_store).run()
        assert warm_store.stats.hits - before.hits == 4
        assert warm_store.stats.misses == before.misses

    def test_dram_override_reuses_training(self, warm_store):
        swept = TINY.with_overrides(voltages=(1.175,), mapping_policy="baseline")
        before = warm_store.stats.snapshot()
        result = ExperimentPipeline(swept, store=warm_store).run()
        # three training-side hits, one dram-eval miss
        assert warm_store.stats.hits - before.hits == 3
        assert warm_store.stats.misses - before.misses == 1
        assert set(result.outcomes) == {1.175}
        assert result.outcomes[1.175].mapping_policy in (
            "baseline-sequential",
            "baseline",
        )

    def test_training_override_invalidates(self, warm_store):
        from repro.pipeline.store import MISS

        changed = TINY.with_overrides(seed=TINY.seed + 1)
        # Different seed: every stage fingerprint changes, so nothing
        # cached for TINY applies (checked via keys, not a retrain).
        for stage in default_stages():
            assert stage.cache_key(changed) != stage.cache_key(TINY)
            assert warm_store.get(stage.name, stage.cache_key(changed)) is MISS


class TestEngineSwitch:
    def test_sequential_fallback_matches_batched(self):
        """The full pipeline is engine-invariant: same results, and —
        because ``engine`` is fingerprint-neutral — the same cache keys."""
        from repro.pipeline.runner import RunRecord

        results = {}
        for engine in ("batched", "sequential"):
            config = TINY.with_overrides(engine=engine)
            results[engine] = ExperimentPipeline(config, store=ArtifactStore()).run()
        a = RunRecord.from_result(results["batched"]).to_dict()
        b = RunRecord.from_result(results["sequential"]).to_dict()
        for volatile in ("wall_time_s", "cache_hits", "cache_misses",
                         "stage_timings"):
            a.pop(volatile)
            b.pop(volatile)
        assert a == b

    def test_engine_shares_cache_fingerprints(self):
        batched = TINY.with_overrides(engine="batched")
        sequential = TINY.with_overrides(engine="sequential")
        for stage in default_stages():
            assert stage.cache_key(batched) == stage.cache_key(sequential)

    def test_unknown_engine_rejected_by_config(self):
        with pytest.raises(ValueError):
            TINY.with_overrides(engine="warp")

    def test_error_model_invalidates_training_fingerprints(self):
        from repro.pipeline.stages import FaultAwareTrainStage, TrainBaselineStage

        eden = TINY.with_overrides(error_model="eden")
        assert (
            FaultAwareTrainStage().cache_key(TINY)
            != FaultAwareTrainStage().cache_key(eden)
        )
        # the baseline trains without error injection: unaffected
        assert (
            TrainBaselineStage().cache_key(TINY)
            == TrainBaselineStage().cache_key(eden)
        )

    def test_unknown_error_model_rejected_by_config(self):
        with pytest.raises(ValueError):
            TINY.with_overrides(error_model="model99")


class TestTrainingEngineFingerprints:
    """train_batch_size / compute_dtype change results, so — unlike the
    result-identical ``engine`` switch — they must invalidate the whole
    training chain."""

    def test_train_batch_size_invalidates_every_stage(self):
        minibatched = TINY.with_overrides(train_batch_size=8)
        for stage in default_stages():
            assert stage.cache_key(TINY) != stage.cache_key(minibatched)

    def test_compute_dtype_invalidates_every_stage(self):
        f32 = TINY.with_overrides(compute_dtype="float32")
        for stage in default_stages():
            assert stage.cache_key(TINY) != stage.cache_key(f32)

    def test_distinct_batch_sizes_get_distinct_keys(self):
        keys = {
            default_stages()[0].cache_key(TINY.with_overrides(train_batch_size=b))
            for b in (1, 2, 16)
        }
        assert len(keys) == 3

    def test_invalid_values_rejected_by_config(self):
        with pytest.raises(ValueError):
            TINY.with_overrides(train_batch_size=0)
        with pytest.raises(ValueError):
            TINY.with_overrides(compute_dtype="float16")

    def test_minibatch_pipeline_runs_end_to_end(self):
        result = ExperimentPipeline(
            TINY.with_overrides(train_batch_size=4, compute_dtype="float32"),
            store=ArtifactStore(),
        ).run()
        assert result.improved_model.weights.dtype == np.dtype(np.float32)
        assert 0.0 <= result.improved_model.accuracy <= 1.0


class TestStageTimings:
    def test_timings_recorded_for_executed_stages(self):
        pipeline = ExperimentPipeline(TINY, store=ArtifactStore())
        pipeline.run()
        assert set(pipeline.stage_timings) == {
            "train-baseline",
            "fault-aware-train",
            "tolerance-analysis",
            "dram-eval",
        }
        assert all(t >= 0 for t in pipeline.stage_timings.values())

    def test_cached_stages_have_no_timing(self, warm_store):
        pipeline = ExperimentPipeline(TINY, store=warm_store)
        pipeline.run()
        assert pipeline.stage_timings == {}


class TestDeclaredFieldsInvalidateCache:
    """Every declared fingerprint field really invalidates its stage.

    This is the cache-invalidation contract the ``repro lint``
    fingerprint-completeness rule protects from the source side: a
    field in a stage's ``fields`` tuple must change that stage's cache
    key when it changes, else declaring it was meaningless.
    """

    # One valid perturbation per config field (applied to TINY).
    PERTURBATIONS = {
        "dataset": "synthetic-blobs",
        "n_train": TINY.n_train + 1,
        "n_test": TINY.n_test + 1,
        "dataset_seed": TINY.dataset_seed + 1,
        "n_neurons": TINY.n_neurons + 4,
        "n_steps": TINY.n_steps + 1,
        "baseline_epochs": TINY.baseline_epochs + 1,
        "epochs_per_rate": TINY.epochs_per_rate + 1,
        "train_batch_size": TINY.train_batch_size + 1,
        "compute_dtype": "float32",
        "stage_encoding": "shared",
        "ber_rates": (1e-4,),
        "accuracy_bound": TINY.accuracy_bound + 0.01,
        "tolerance_trials": TINY.tolerance_trials + 1,
        "error_model": "eden",
        "representation": "int8",
        "voltages": (1.175,),
        "mapping_policy": "baseline",
        "weak_cell_sigma": TINY.weak_cell_sigma + 0.1,
        "weak_cell_seed": TINY.weak_cell_seed + 1,
        "refetch_passes": TINY.refetch_passes + 1,
        "seed": TINY.seed + 1,
    }

    def test_every_declared_field_changes_the_cache_key(self):
        for stage in default_stages():
            for field in stage.fields:
                if field == "dram_spec":
                    continue  # perturbed separately below
                base = TINY
                if field == "stage_encoding":
                    # "shared" is only valid in minibatch mode; perturb
                    # from a batched base so only this field changes.
                    base = TINY.with_overrides(train_batch_size=2)
                changed = base.with_overrides(**{field: self.PERTURBATIONS[field]})
                assert stage.cache_key(changed) != stage.cache_key(base), (
                    f"{stage.name}: declared field {field!r} does not "
                    "invalidate the stage fingerprint"
                )

    def test_dram_spec_changes_the_dram_key(self):
        from repro.dram.specs import get_dram_spec

        changed = TINY.with_overrides(dram_spec=get_dram_spec("tiny"))
        stage = DramEvalStage()
        assert stage.cache_key(changed) != stage.cache_key(TINY)

    def test_undeclared_fields_leave_the_key_alone(self):
        # The complement: a field *outside* a stage's tuple must not
        # split its cache (here: DRAM-side knobs vs the training stage).
        from repro.pipeline import TrainBaselineStage

        stage = TrainBaselineStage()
        for field in ("voltages", "mapping_policy", "tolerance_trials"):
            changed = TINY.with_overrides(**{field: self.PERTURBATIONS[field]})
            assert stage.cache_key(changed) == stage.cache_key(TINY)

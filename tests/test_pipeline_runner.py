"""Tests of the sweep runner: grids, caching across points, parallelism."""

import pytest

from repro import SparkXDConfig
from repro.pipeline import ArtifactStore, Runner, RunRecord, sweep_grid

TINY = SparkXDConfig.small(
    n_train=40,
    n_test=25,
    n_neurons=12,
    n_steps=30,
    baseline_epochs=1,
    ber_rates=(1e-5, 1e-3),
    accuracy_bound=0.5,
)


class TestSweepGrid:
    def test_empty_grid_is_single_point(self):
        assert sweep_grid({}) == [{}]

    def test_cartesian_product_order(self):
        grid = sweep_grid({"a": [1, 2], "b": ["x", "y"]})
        assert grid == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="has no values"):
            sweep_grid({"a": []})


class TestRunRecordSerialisation:
    def test_round_trip_via_dict(self, run_record_factory):
        record = run_record_factory()
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()
        assert clone.voltages == record.voltages
        assert clone.result is None

    def test_none_threshold_round_trips(self, run_record_factory):
        record = run_record_factory(ber_threshold=None)
        assert RunRecord.from_dict(record.to_dict()).ber_threshold is None


class TestRunnerValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            Runner(TINY, max_workers=0)

    def test_configs_for_expands_grid(self):
        runner = Runner(TINY)
        configs = runner.configs_for({"seed": [1, 2], "mapping_policy": ["baseline"]})
        assert [c.seed for c in configs] == [1, 2]
        assert all(c.mapping_policy == "baseline" for c in configs)


@pytest.mark.slow
class TestRunnerExecution:
    def test_voltage_ber_sweep_trains_exactly_once(self, monkeypatch):
        """The acceptance check: a voltage x BER(-via-voltage) x policy
        sweep reuses one trained model for every grid point."""
        import repro.pipeline.stages as stages_module

        calls = {"train_baseline": 0, "improve": 0}
        orig_train = stages_module.train_baseline
        orig_improve = stages_module.improve_error_tolerance

        def counting_train(*args, **kwargs):
            calls["train_baseline"] += 1
            return orig_train(*args, **kwargs)

        def counting_improve(*args, **kwargs):
            calls["improve"] += 1
            return orig_improve(*args, **kwargs)

        monkeypatch.setattr(stages_module, "train_baseline", counting_train)
        monkeypatch.setattr(
            stages_module, "improve_error_tolerance", counting_improve
        )

        runner = Runner(TINY, store=ArtifactStore())
        # Each voltage point implies a different device BER (Fig. 2c),
        # so this is the paper's voltage x BER grid, crossed with the
        # mapping-policy axis.
        records = runner.run({
            "voltages": [(1.325,), (1.175,), (1.025,)],
            "mapping_policy": ["sparkxd", "baseline"],
        })
        assert len(records) == 6
        assert calls["train_baseline"] == 1
        assert calls["improve"] == 1
        # identical training -> identical accuracies everywhere
        assert len({r.baseline_accuracy for r in records}) == 1
        assert len({r.improved_accuracy for r in records}) == 1
        # ...but six distinct run ids and per-point params
        assert len({r.run_id for r in records}) == 6
        assert records[0].params == {
            "voltages": (1.325,),
            "mapping_policy": "sparkxd",
        }
        # later grid points hit the three cached training stages
        assert all(r.cache_hits >= 3 for r in records[1:])
        for record in records:
            (point,) = record.voltages
            assert point.v_supply == record.params["voltages"][0]

    def test_parallel_matches_serial(self):
        grid = {"voltages": [(1.325,), (1.025,)]}
        serial = Runner(TINY, store=ArtifactStore()).run(grid)
        parallel = Runner(TINY, store=ArtifactStore(), max_workers=2).run(grid)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            da, db = a.to_dict(), b.to_dict()
            for volatile in (
                "wall_time_s",
                "cache_hits",
                "cache_misses",
                "stage_timings",
            ):
                da.pop(volatile)
                db.pop(volatile)
            assert da == db


class TestStageTimingsInRecords:
    def test_records_carry_stage_timings(self):
        records = Runner(TINY, store=ArtifactStore()).run({})
        (record,) = records
        assert set(record.stage_timings) == {
            "train-baseline",
            "fault-aware-train",
            "tolerance-analysis",
            "dram-eval",
        }
        assert record.to_dict()["stage_timings"] == dict(
            sorted(record.stage_timings.items())
        )

    def test_cached_points_report_empty_timings(self):
        store = ArtifactStore()
        Runner(TINY, store=store).run({})
        again = Runner(TINY, store=store).run({})
        assert again[0].stage_timings == {}

    def test_timings_roundtrip_serialisation(self, run_record_factory):
        record = run_record_factory(stage_timings={"dram-eval": 0.25})
        restored = RunRecord.from_dict(record.to_dict())
        assert restored.stage_timings == {"dram-eval": 0.25}

    def test_timings_default_for_old_payloads(self, run_record_factory):
        payload = run_record_factory().to_dict()
        payload.pop("stage_timings")
        assert RunRecord.from_dict(payload).stage_timings == {}


class TestTrainingKnobsInRecords:
    def test_roundtrip(self, run_record_factory):
        record = run_record_factory(train_batch_size=16, compute_dtype="float32")
        payload = record.to_dict()
        assert payload["train_batch_size"] == 16
        assert payload["compute_dtype"] == "float32"
        restored = RunRecord.from_dict(payload)
        assert restored.train_batch_size == 16
        assert restored.compute_dtype == "float32"

    def test_defaults_for_old_payloads(self, run_record_factory):
        payload = run_record_factory().to_dict()
        payload.pop("train_batch_size")
        payload.pop("compute_dtype")
        restored = RunRecord.from_dict(payload)
        assert restored.train_batch_size == 1
        assert restored.compute_dtype == "float64"

    def test_sweepable_as_grid_axis(self):
        records = Runner(TINY, store=ArtifactStore()).run(
            {"train_batch_size": [1, 4]}
        )
        assert [r.train_batch_size for r in records] == [1, 4]
        assert records[0].run_id != records[1].run_id


class TestThreadCapping:
    def test_rejects_nonpositive_threads(self):
        with pytest.raises(ValueError):
            Runner(TINY, threads_per_worker=0)

    def test_none_disables_capping(self):
        assert Runner(TINY, threads_per_worker=None).threads_per_worker is None

    def test_thread_cap_env_sets_and_restores(self, monkeypatch):
        import os

        from repro.pipeline.runner import THREAD_ENV_VARS, _thread_cap_env

        # Pin a known pre-state (one set, one unset) regardless of what
        # the host environment exports.
        monkeypatch.setenv("OMP_NUM_THREADS", "7")
        monkeypatch.delenv("MKL_NUM_THREADS", raising=False)
        with _thread_cap_env(2):
            assert all(os.environ[v] == "2" for v in THREAD_ENV_VARS)
        assert os.environ["OMP_NUM_THREADS"] == "7"
        assert "MKL_NUM_THREADS" not in os.environ

    def test_capped_parallel_matches_serial(self):
        grid = {"voltages": [(1.325,), (1.025,)]}
        serial = Runner(TINY, store=ArtifactStore()).run(grid)
        capped = Runner(
            TINY, store=ArtifactStore(), max_workers=2, threads_per_worker=1
        ).run(grid)
        for a, b in zip(serial, capped):
            da, db = a.to_dict(), b.to_dict()
            for volatile in ("wall_time_s", "cache_hits", "cache_misses",
                             "stage_timings"):
                da.pop(volatile)
                db.pop(volatile)
            assert da == db

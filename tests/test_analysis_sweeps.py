"""Tests of the accuracy/energy sweep helpers."""

import numpy as np
import pytest

from repro.analysis.sweeps import AccuracySweepPoint, accuracy_vs_ber_sweep
from repro.core.fault_aware_training import train_baseline
from repro.errors.injection import ErrorInjector
from repro.snn.quantization import Float32Representation


@pytest.fixture(scope="module")
def trained():
    from repro.datasets import load_dataset

    dataset = load_dataset("mnist", 60, 40, seed=7)
    model = train_baseline(
        dataset, n_neurons=25, epochs=1, n_steps=50, rng=np.random.default_rng(4)
    )
    return dataset, model


class TestAccuracySweep:
    def test_one_point_per_rate_sorted(self, trained):
        dataset, model = trained
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=1)
        points = accuracy_vs_ber_sweep(
            model, dataset, injector, rates=(1e-3, 1e-7),  # unsorted input
            n_steps=50, rng=np.random.default_rng(0),
        )
        assert [p.ber for p in points] == [1e-7, 1e-3]
        for p in points:
            assert isinstance(p, AccuracySweepPoint)
            assert 0.0 <= p.accuracy <= 1.0

    def test_model_weights_restored_after_sweep(self, trained):
        dataset, model = trained
        weights_before = model.weights.copy()
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=1)
        accuracy_vs_ber_sweep(
            model, dataset, injector, rates=(1e-3,),
            n_steps=40, rng=np.random.default_rng(0),
        )
        assert np.array_equal(model.weights, weights_before)

    def test_trials_validated(self, trained):
        dataset, model = trained
        injector = ErrorInjector(Float32Representation(), seed=1)
        with pytest.raises(ValueError):
            accuracy_vs_ber_sweep(
                model, dataset, injector, rates=(1e-3,), n_steps=40,
                rng=np.random.default_rng(0), trials=0,
            )

    def test_zero_ber_matches_clean_inference(self, trained):
        dataset, model = trained
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=1)
        rng_state = np.random.default_rng(42)
        points = accuracy_vs_ber_sweep(
            model, dataset, injector, rates=(0.0,),
            n_steps=50, rng=rng_state,
        )
        # with zero errors the sweep is just an evaluation; sane range
        assert points[0].accuracy > 0.15

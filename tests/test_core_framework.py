"""Tests of the SparkXD orchestrator and its configuration."""

import numpy as np
import pytest

from repro.core.config import PAPER_BER_RATES, PAPER_VOLTAGES, SparkXDConfig
from repro.core.framework import SparkXD


class TestConfig:
    def test_defaults_follow_paper(self):
        cfg = SparkXDConfig()
        assert cfg.ber_rates == PAPER_BER_RATES
        assert cfg.voltages == PAPER_VOLTAGES
        assert cfg.accuracy_bound == 0.01  # "within 1%"
        assert cfg.v_nominal == pytest.approx(1.35)

    def test_paper_voltages_are_fig12_corners(self):
        assert PAPER_VOLTAGES == (1.325, 1.250, 1.175, 1.100, 1.025)

    def test_with_overrides(self):
        cfg = SparkXDConfig().with_overrides(n_neurons=123)
        assert cfg.n_neurons == 123
        assert cfg.dataset == "mnist"

    def test_small_preset_valid(self):
        cfg = SparkXDConfig.small()
        assert cfg.n_neurons < 400

    def test_paper_preset_sizes(self):
        cfg = SparkXDConfig.paper(n_neurons=900, dataset="fashion")
        assert cfg.n_neurons == 900
        assert cfg.dataset == "fashion"
        assert cfg.accuracy_bound == 0.01

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_train": 0},
            {"n_neurons": 0},
            {"ber_rates": ()},
            {"ber_rates": (2.0,)},
            {"accuracy_bound": -0.1},
            {"voltages": ()},
            {"voltages": (1.5,)},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SparkXDConfig(**kwargs)


class TestEvaluateDram:
    """evaluate_dram runs without any SNN training, so it tests fast."""

    @pytest.fixture
    def frame(self):
        return SparkXD(SparkXDConfig.small(weak_cell_sigma=0.5, weak_cell_seed=1))

    def test_baseline_runs_at_nominal_voltage(self, frame):
        baseline, _ = frame.evaluate_dram(
            n_weights=4096, bits_per_weight=32, ber_threshold=1e-3
        )
        assert baseline.v_supply == pytest.approx(1.35)
        assert baseline.stats.accesses == 4096 // 2  # 2 fp32 weights per slot

    def test_feasible_voltages_save_energy(self, frame):
        baseline, outcomes = frame.evaluate_dram(
            n_weights=4096, bits_per_weight=32, ber_threshold=1e-3
        )
        feasible = [o for o in outcomes.values() if o.feasible]
        assert feasible, "expected at least one feasible voltage"
        for outcome in feasible:
            assert outcome.energy_saving > 0
            assert outcome.result.stats.accesses == baseline.stats.accesses

    def test_savings_grow_as_voltage_drops(self, frame):
        _, outcomes = frame.evaluate_dram(
            n_weights=4096, bits_per_weight=32, ber_threshold=1.0
        )
        voltages = sorted(outcomes)
        savings = [outcomes[v].energy_saving for v in voltages]
        assert all(a > b for a, b in zip(savings, savings[1:]))

    def test_tight_threshold_makes_low_voltages_infeasible(self, frame):
        _, outcomes = frame.evaluate_dram(
            n_weights=4096, bits_per_weight=32, ber_threshold=1e-12
        )
        assert not outcomes[1.025].feasible
        assert outcomes[1.025].result is None

    def test_none_threshold_treated_as_intolerant(self, frame):
        _, outcomes = frame.evaluate_dram(
            n_weights=4096, bits_per_weight=32, ber_threshold=None
        )
        assert not any(o.feasible for o in outcomes.values())


class TestEndToEnd:
    @pytest.mark.slow
    def test_small_run_produces_complete_result(self):
        config = SparkXDConfig.small(
            n_train=50, n_test=30, n_neurons=20, n_steps=40,
            baseline_epochs=1, ber_rates=(1e-5, 1e-3), accuracy_bound=0.3,
        )
        result = SparkXD(config).run()
        assert 0.0 <= result.baseline_model.accuracy <= 1.0
        assert set(result.outcomes) == set(config.voltages)
        assert result.training.rates == (1e-5, 1e-3)
        assert len(result.tolerance.points) == 2
        summary = result.summary()
        assert "baseline accuracy" in summary
        assert "mean energy saving" in summary
        assert isinstance(result.mean_energy_saving(), float)

"""Tests of the BER-versus-voltage curve (Fig. 2c)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors.ber import BerVoltageCurve, DEFAULT_BER_CURVE


class TestDefaultCurve:
    def test_zero_errors_at_safe_voltage(self):
        assert DEFAULT_BER_CURVE.ber_at(1.35) == 0.0
        assert DEFAULT_BER_CURVE.ber_at(1.40) == 0.0

    def test_anchor_points_exact(self):
        for v, ber in DEFAULT_BER_CURVE.anchors:
            assert DEFAULT_BER_CURVE.ber_at(v) == pytest.approx(ber, rel=1e-9)

    def test_monotone_decreasing_in_voltage(self):
        # Fig. 2(c): bit error rate increases as the supply decreases.
        voltages = np.linspace(1.0, 1.34, 50)
        bers = DEFAULT_BER_CURVE.ber_array(voltages)
        assert np.all(np.diff(bers) < 0)

    def test_span_matches_figure(self):
        # Fig. 2(c) spans roughly 1e-8 (high V) to 1e-2 (low V).
        assert DEFAULT_BER_CURVE.ber_at(1.325) <= 1e-8
        assert DEFAULT_BER_CURVE.ber_at(1.025) >= 1e-4

    def test_extrapolation_below_range_grows(self):
        assert DEFAULT_BER_CURVE.ber_at(1.0) > DEFAULT_BER_CURVE.ber_at(1.025)

    def test_invalid_voltage_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_BER_CURVE.ber_at(0.0)


class TestInverse:
    def test_voltage_for_zero_ber_is_safe_voltage(self):
        assert DEFAULT_BER_CURVE.voltage_for_ber(0.0) == DEFAULT_BER_CURVE.v_safe

    def test_inverse_of_anchor(self):
        for v, ber in DEFAULT_BER_CURVE.anchors:
            assert DEFAULT_BER_CURVE.voltage_for_ber(ber) == pytest.approx(v, abs=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(v=st.floats(min_value=1.03, max_value=1.32))
    def test_roundtrip_property(self, v):
        ber = DEFAULT_BER_CURVE.ber_at(v)
        assert DEFAULT_BER_CURVE.voltage_for_ber(ber) == pytest.approx(v, abs=1e-6)

    def test_threshold_semantics(self):
        # voltage_for_ber returns the lowest voltage whose BER does not
        # exceed the threshold.
        v = DEFAULT_BER_CURVE.voltage_for_ber(1e-6)
        assert DEFAULT_BER_CURVE.ber_at(v) <= 1e-6 * (1 + 1e-9)
        assert DEFAULT_BER_CURVE.ber_at(v - 0.01) > 1e-6


class TestValidation:
    def test_requires_two_anchors(self):
        with pytest.raises(ValueError):
            BerVoltageCurve(anchors=((1.0, 1e-3),))

    def test_rejects_nonincreasing_voltages(self):
        with pytest.raises(ValueError):
            BerVoltageCurve(anchors=((1.1, 1e-3), (1.1, 1e-5)))

    def test_rejects_nondecreasing_bers(self):
        with pytest.raises(ValueError):
            BerVoltageCurve(anchors=((1.0, 1e-5), (1.1, 1e-3)))

    def test_rejects_zero_ber_anchor(self):
        with pytest.raises(ValueError):
            BerVoltageCurve(anchors=((1.0, 1e-3), (1.1, 0.0)))

    def test_rejects_anchor_at_or_above_safe(self):
        with pytest.raises(ValueError):
            BerVoltageCurve(anchors=((1.0, 1e-3), (1.35, 1e-9)), v_safe=1.35)

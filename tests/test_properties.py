"""Cross-module property-based tests (hypothesis).

These pit the production implementations against independent naive
reference models on randomised inputs — the strongest correctness
checks in the suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping_policy import sparkxd_mapping
from repro.dram.commands import AccessCondition
from repro.dram.organization import DramOrganization
from repro.dram.row_buffer import RowBufferSimulator
from repro.dram.specs import tiny_spec
from repro.dram.timing import timing_for_voltage
from repro.errors.ecc import CODE_BITS, decode_words, encode_words
from repro.errors.weak_cells import SubarrayErrorProfile


def naive_row_buffer_conditions(org, slots):
    """Reference: classify accesses with a plain dict of open rows."""
    open_rows = {}
    conditions = []
    for slot in slots:
        coord = org.coordinate_of(slot)
        bank = org.bank_key(coord)
        row = org.global_row_key(coord)
        if bank not in open_rows:
            conditions.append(AccessCondition.MISS)
        elif open_rows[bank] == row:
            conditions.append(AccessCondition.HIT)
        else:
            conditions.append(AccessCondition.CONFLICT)
        open_rows[bank] = row
    return conditions


class TestRowBufferAgainstReference:
    @settings(max_examples=100, deadline=None)
    @given(
        slots=st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=60)
    )
    def test_condition_sequence_matches_reference(self, slots):
        org = DramOrganization(tiny_spec())
        sim = RowBufferSimulator(org, timing_for_voltage(org.spec, 1.35))
        measured = [sim.access(org.coordinate_of(s)) for s in slots]
        expected = naive_row_buffer_conditions(org, slots)
        assert measured == expected

    @settings(max_examples=50, deadline=None)
    @given(
        slots=st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=60)
    )
    def test_command_counts_follow_conditions(self, slots):
        org = DramOrganization(tiny_spec())
        sim = RowBufferSimulator(org, timing_for_voltage(org.spec, 1.35))
        stats = sim.run([org.coordinate_of(s) for s in slots])
        from repro.dram.commands import CommandKind

        assert stats.command_counts[CommandKind.RD] == len(slots)
        assert stats.command_counts[CommandKind.ACT] == stats.misses + stats.conflicts
        assert stats.command_counts[CommandKind.PRE] == stats.conflicts

    @settings(max_examples=30, deadline=None)
    @given(
        slots=st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=40),
        v=st.sampled_from([1.35, 1.175, 1.025]),
    )
    def test_time_never_less_than_bus_occupancy(self, slots, v):
        org = DramOrganization(tiny_spec())
        timing = timing_for_voltage(org.spec, v)
        sim = RowBufferSimulator(org, timing)
        stats = sim.run([org.coordinate_of(s) for s in slots])
        assert stats.total_time_ns >= stats.bus_busy_time_ns - 1e-9


class TestEccExhaustive:
    def test_every_single_bit_error_is_corrected(self, rng):
        # exhaustive over all 72 positions of a random codeword batch
        data = rng.integers(0, 2**63, size=4, dtype=np.uint64)
        code = encode_words(data)
        for bit in range(CODE_BITS):
            corrupted = code.copy()
            corrupted[:, bit] ^= 1
            decoded, report = decode_words(corrupted)
            assert np.array_equal(decoded, data), f"bit {bit}"
            assert report.corrected_words == data.size

    @settings(max_examples=100, deadline=None)
    @given(
        word=st.integers(min_value=0, max_value=2**64 - 1),
        b1=st.integers(min_value=0, max_value=CODE_BITS - 1),
        b2=st.integers(min_value=0, max_value=CODE_BITS - 1),
    )
    def test_double_errors_never_silently_corrupt(self, word, b1, b2):
        # SEC-DED guarantee: two flips are either reported uncorrectable
        # or cancel out (b1 == b2) — never a silent wrong correction.
        data = np.array([word], dtype=np.uint64)
        code = encode_words(data)
        code[0, b1] ^= 1
        code[0, b2] ^= 1
        decoded, report = decode_words(code)
        if b1 == b2:
            assert np.array_equal(decoded, data)
            assert report.uncorrectable_words == 0
        else:
            assert report.uncorrectable_words == 1


class TestMappingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        n_weights=st.integers(min_value=1, max_value=120),
    )
    def test_sparkxd_mapping_respects_threshold_property(self, seed, n_weights):
        org = DramOrganization(tiny_spec())
        rng = np.random.default_rng(seed)
        rates = rng.uniform(0, 2e-3, org.total_subarrays)
        threshold = 1e-3
        if (rates <= threshold).sum() * org.slots_per_subarray() < org.slots_needed(
            n_weights * 32
        ):
            return  # infeasible instance; covered by dedicated tests
        profile = SubarrayErrorProfile(
            organization=org, v_supply=1.1, device_ber=1e-3, rates=rates
        )
        mapping = sparkxd_mapping(org, n_weights, 32, profile, threshold)
        # invariant 1: no duplicate slots
        assert len(np.unique(mapping.slot_of_chunk)) == mapping.n_chunks
        # invariant 2: every weight sits in a safe subarray
        used = mapping.subarray_of_weight()
        assert np.all(rates[used] <= threshold)
        # invariant 3: chunk count covers the tensor exactly
        assert mapping.n_chunks == org.slots_needed(n_weights * 32)

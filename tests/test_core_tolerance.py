"""Tests of the error-tolerance analysis (Section IV-C)."""

import numpy as np
import pytest

from repro.core.tolerance_analysis import (
    ToleranceReport,
    TolerancePoint,
    analyze_error_tolerance,
)
from repro.core.fault_aware_training import train_baseline
from repro.errors.ber import DEFAULT_BER_CURVE
from repro.errors.injection import ErrorInjector
from repro.snn.quantization import Float32Representation


@pytest.fixture(scope="module")
def trained():
    from repro.datasets import load_dataset

    dataset = load_dataset("mnist", 60, 40, seed=7)
    model = train_baseline(
        dataset, n_neurons=25, epochs=1, n_steps=50, rng=np.random.default_rng(2)
    )
    return dataset, model


class TestAnalysis:
    def test_report_has_one_point_per_rate(self, trained):
        dataset, model = trained
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=1)
        report = analyze_error_tolerance(
            model,
            dataset,
            injector,
            rates=(1e-7, 1e-5, 1e-3),
            baseline_accuracy=model.accuracy,
            accuracy_bound=0.10,
            n_steps=50,
            rng=np.random.default_rng(0),
        )
        assert len(report.points) == 3
        assert [p.ber for p in report.points] == [1e-7, 1e-5, 1e-3]
        assert report.target_accuracy == pytest.approx(model.accuracy - 0.10)

    def test_generous_bound_accepts_highest_rate(self, trained):
        dataset, model = trained
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=1)
        report = analyze_error_tolerance(
            model,
            dataset,
            injector,
            rates=(1e-9, 1e-7),
            baseline_accuracy=model.accuracy,
            accuracy_bound=1.0,  # everything passes
            n_steps=50,
            rng=np.random.default_rng(0),
        )
        assert report.ber_threshold == 1e-7

    def test_impossible_bound_returns_none(self, trained):
        dataset, model = trained
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=1)
        report = analyze_error_tolerance(
            model,
            dataset,
            injector,
            rates=(1e-7,),
            baseline_accuracy=1.1,  # unreachable target
            accuracy_bound=0.0,
            n_steps=50,
            rng=np.random.default_rng(0),
        )
        assert report.ber_threshold is None
        assert not report.meets_target(1e-9)

    def test_validation(self, trained):
        dataset, model = trained
        injector = ErrorInjector(Float32Representation(), seed=1)
        with pytest.raises(ValueError):
            analyze_error_tolerance(
                model, dataset, injector, rates=(1e-5,),
                baseline_accuracy=0.8, accuracy_bound=-0.1,
            )
        with pytest.raises(ValueError):
            analyze_error_tolerance(
                model, dataset, injector, rates=(1e-5,),
                baseline_accuracy=0.8, trials=0,
            )


class TestReport:
    def _report(self, threshold):
        return ToleranceReport(
            points=(
                TolerancePoint(1e-7, 0.9, 1),
                TolerancePoint(1e-5, 0.88, 1),
            ),
            target_accuracy=0.87,
            ber_threshold=threshold,
            baseline_accuracy=0.89,
        )

    def test_curve(self):
        report = self._report(1e-5)
        assert report.curve == ((1e-7, 0.9), (1e-5, 0.88))

    def test_meets_target(self):
        report = self._report(1e-5)
        assert report.meets_target(1e-6)
        assert report.meets_target(1e-5)
        assert not report.meets_target(1e-4)

    def test_min_voltage_inverts_ber_curve(self):
        report = self._report(1e-5)
        v = report.min_voltage()
        assert DEFAULT_BER_CURVE.ber_at(v) <= 1e-5 * (1 + 1e-9)

    def test_min_voltage_without_threshold_is_safe(self):
        report = self._report(None)
        assert report.min_voltage() == DEFAULT_BER_CURVE.v_safe


class TestEngineEquivalence:
    def test_batched_and_sequential_reports_identical(self, trained):
        dataset, model = trained
        reports = {}
        for engine in ("batched", "sequential"):
            injector = ErrorInjector(
                Float32Representation(clip_range=(0, 1)), seed=1
            )
            reports[engine] = analyze_error_tolerance(
                model,
                dataset,
                injector,
                rates=(1e-4, 1e-2),
                baseline_accuracy=model.accuracy,
                accuracy_bound=0.10,
                n_steps=50,
                trials=2,
                rng=np.random.default_rng(0),
                engine=engine,
            )
        assert reports["batched"].curve == reports["sequential"].curve
        assert (
            reports["batched"].ber_threshold == reports["sequential"].ber_threshold
        )

    def test_unknown_engine_rejected(self, trained):
        dataset, model = trained
        injector = ErrorInjector(Float32Representation(), seed=1)
        with pytest.raises(ValueError):
            analyze_error_tolerance(
                model, dataset, injector, rates=(1e-5,),
                baseline_accuracy=0.8, engine="quantum",
            )

"""Tests of the operating-voltage selection step."""

import pytest

from repro.core.voltage_selection import select_operating_voltage
from repro.dram.organization import DramOrganization
from repro.dram.specs import LPDDR3_1600_4GB, tiny_spec
from repro.errors.weak_cells import WeakCellMap


class TestSelection:
    def test_tolerant_model_gets_lowest_voltage(self):
        decision = select_operating_voltage(
            LPDDR3_1600_4GB, n_weights=784 * 100, bits_per_weight=32,
            ber_threshold=1e-2,  # tolerant beyond every corner's BER
        )
        assert decision.v_selected == pytest.approx(1.025)
        assert decision.estimated_access_saving == pytest.approx(0.42, abs=0.01)
        assert decision.is_reduced

    def test_moderate_threshold_picks_matching_corner(self):
        # BER_th 1e-5 -> device BER must be <= 1e-5 -> 1.100V corner.
        decision = select_operating_voltage(
            LPDDR3_1600_4GB, n_weights=784 * 100, bits_per_weight=32,
            ber_threshold=1e-5,
            weak_cells=WeakCellMap(DramOrganization(LPDDR3_1600_4GB), sigma=0.0),
        )
        assert decision.v_selected == pytest.approx(1.100)
        rejected_voltages = [v for v, _ in decision.rejected]
        assert 1.025 in rejected_voltages

    def test_none_threshold_falls_back_to_nominal(self):
        decision = select_operating_voltage(
            LPDDR3_1600_4GB, n_weights=1024, bits_per_weight=32,
            ber_threshold=None,
        )
        assert decision.v_selected == pytest.approx(1.35)
        assert not decision.is_reduced
        assert all(reason == "ber" for _, reason in decision.rejected)

    def test_capacity_rejection(self):
        # tiny device, tensor larger than any single safe subarray set
        spec = tiny_spec()
        org = DramOrganization(spec)
        # all subarrays identical; threshold below the device BER at
        # every corner except none -> capacity is the binding constraint
        # when the tensor exceeds total capacity of safe subarrays.
        weak = WeakCellMap(org, sigma=2.5, seed=0)
        n_weights = org.total_slots  # 32-bit slots, 1 weight per slot
        decision = select_operating_voltage(
            spec, n_weights=n_weights, bits_per_weight=32,
            ber_threshold=1e-7, weak_cells=weak,
        )
        # at least one corner must have been rejected for capacity
        # (with sigma=2.5 some subarrays exceed the threshold), or the
        # search fell back to nominal entirely.
        reasons = {reason for _, reason in decision.rejected}
        assert decision.v_selected in (1.35, 1.100, 1.175, 1.250, 1.325)
        assert reasons <= {"ber", "capacity"}

    def test_validation(self):
        with pytest.raises(ValueError):
            select_operating_voltage(
                LPDDR3_1600_4GB, n_weights=0, bits_per_weight=32, ber_threshold=1e-3
            )

    def test_safe_fraction_reported(self):
        decision = select_operating_voltage(
            LPDDR3_1600_4GB, n_weights=1024, bits_per_weight=32,
            ber_threshold=1e-2,
        )
        assert 0.0 < decision.safe_subarray_fraction <= 1.0

"""Tests of unsupervised training, label assignment and evaluation."""

import numpy as np
import pytest

from repro.snn.network import DiehlCookNetwork, NetworkParameters
from repro.snn.training import (
    TrainedModel,
    assign_labels,
    evaluate_accuracy,
    predict,
    run_spike_counts,
    train_unsupervised,
)


class TestAssignLabels:
    def test_assigns_strongest_class(self):
        counts = np.array([[10, 0], [9, 1], [0, 10], [1, 8]])
        labels = np.array([0, 0, 1, 1])
        assignments = assign_labels(counts, labels, n_classes=2)
        assert assignments.tolist() == [0, 1]

    def test_silent_neurons_get_minus_one(self):
        counts = np.zeros((4, 3), dtype=int)
        counts[:, 0] = 1
        assignments = assign_labels(counts, np.array([0, 1, 0, 1]), n_classes=2)
        assert assignments[1] == -1
        assert assignments[2] == -1

    def test_label_alignment_enforced(self):
        with pytest.raises(ValueError):
            assign_labels(np.zeros((3, 2)), np.zeros(4), n_classes=2)


class TestPredict:
    def test_majority_vote(self):
        counts = np.array([[5, 0, 1], [0, 6, 0]])
        assignments = np.array([0, 1, 1])
        preds = predict(counts, assignments, n_classes=2)
        assert preds.tolist() == [0, 1]

    def test_votes_normalised_by_class_size(self):
        # Two neurons assigned to class 0, one to class 1; raw sums would
        # favour class 0, per-neuron averages must not.
        counts = np.array([[2, 2, 5]])
        assignments = np.array([0, 0, 1])
        preds = predict(counts, assignments, n_classes=2)
        assert preds[0] == 1

    def test_unassigned_neurons_never_vote(self):
        counts = np.array([[100, 1]])
        assignments = np.array([-1, 1])
        preds = predict(counts, assignments, n_classes=2)
        assert preds[0] == 1


class TestTrainedModel:
    def test_copy_is_deep(self):
        model = TrainedModel(
            weights=np.ones((4, 2)),
            theta=np.zeros(2),
            assignments=np.zeros(2, dtype=np.int64),
            n_input=4,
            n_neurons=2,
        )
        clone = model.copy()
        clone.weights[0, 0] = 9.0
        clone.metadata["x"] = 1
        assert model.weights[0, 0] == 1.0
        assert "x" not in model.metadata

    def test_install_into_network(self, rng):
        params = NetworkParameters(n_input=4, n_neurons=2)
        net = DiehlCookNetwork(params, rng=rng)
        model = TrainedModel(
            weights=np.full((4, 2), 0.25),
            theta=np.array([1.0, 2.0]),
            assignments=np.zeros(2, dtype=np.int64),
            n_input=4,
            n_neurons=2,
        )
        model.install_into(net)
        assert np.array_equal(net.weights, model.weights)
        assert np.array_equal(net.neurons.theta, model.theta)


class TestTrainingLoop:
    def test_training_beats_chance_on_mini_dataset(self, mini_mnist, rng):
        params = NetworkParameters(n_neurons=40)
        net = DiehlCookNetwork(params, rng=rng)
        model = train_unsupervised(
            net,
            mini_mnist.train_images,
            mini_mnist.train_labels,
            n_steps=60,
            epochs=1,
            rng=rng,
        )
        accuracy = evaluate_accuracy(
            net,
            mini_mnist.test_images,
            mini_mnist.test_labels,
            model.assignments,
            n_steps=60,
            rng=rng,
        )
        assert accuracy > 0.3  # 10 classes -> chance is 0.1

    def test_trained_model_fields(self, mini_mnist, rng):
        params = NetworkParameters(n_neurons=20)
        net = DiehlCookNetwork(params, rng=rng)
        model = train_unsupervised(
            net,
            mini_mnist.train_images[:30],
            mini_mnist.train_labels[:30],
            n_steps=40,
            rng=rng,
        )
        assert model.weights.shape == (784, 20)
        assert model.theta.shape == (20,)
        assert model.assignments.shape == (20,)
        assert 0.0 <= model.accuracy <= 1.0
        assert model.metadata["epochs"] == 1

    def test_mismatched_labels_rejected(self, mini_mnist, rng):
        net = DiehlCookNetwork(NetworkParameters(n_neurons=10), rng=rng)
        with pytest.raises(ValueError):
            train_unsupervised(
                net, mini_mnist.train_images[:10], mini_mnist.train_labels[:5], rng=rng
            )

    def test_corrupt_weights_hook_runs_and_keeps_weights_finite(
        self, mini_mnist, rng
    ):
        net = DiehlCookNetwork(NetworkParameters(n_neurons=10), rng=rng)
        calls = []

        def corrupt(weights):
            calls.append(1)
            noisy = weights + rng.normal(0, 0.01, weights.shape)
            return np.clip(noisy, 0.0, 1.0)

        train_unsupervised(
            net,
            mini_mnist.train_images[:10],
            mini_mnist.train_labels[:10],
            n_steps=30,
            rng=rng,
            corrupt_weights=corrupt,
        )
        assert len(calls) == 10
        assert np.all(np.isfinite(net.weights))
        assert net.weights.min() >= 0.0

    def test_run_spike_counts_shape(self, mini_mnist, rng):
        net = DiehlCookNetwork(NetworkParameters(n_neurons=10), rng=rng)
        counts = run_spike_counts(net, mini_mnist.test_images[:5], 30, rng)
        assert counts.shape == (5, 10)

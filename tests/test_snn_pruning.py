"""Tests of magnitude-based pruning (the Fig. 2a combination study)."""

import numpy as np
import pytest

from repro.snn.pruning import connectivity, prune_by_magnitude, pruned_weight_count


class TestConnectivity:
    def test_full_matrix(self):
        assert connectivity(np.ones((4, 4))) == 1.0

    def test_half_zero(self):
        weights = np.array([1.0, 0.0, 2.0, 0.0])
        assert connectivity(weights) == 0.5

    def test_threshold(self):
        weights = np.array([0.05, 0.5])
        assert connectivity(weights, threshold=0.1) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            connectivity(np.array([]))


class TestPrune:
    def test_keeps_exact_fraction(self, rng):
        weights = rng.random((20, 20))
        pruned, mask = prune_by_magnitude(weights, 0.7)
        assert mask.sum() == pruned_weight_count(weights.size, 0.7)
        assert connectivity(pruned) == pytest.approx(0.7, abs=0.01)

    def test_keeps_largest_magnitudes(self):
        weights = np.array([0.1, 0.9, 0.5, 0.2])
        pruned, mask = prune_by_magnitude(weights, 0.5)
        assert mask.tolist() == [False, True, True, False]
        assert pruned.tolist() == [0.0, 0.9, 0.5, 0.0]

    def test_respects_sign(self):
        weights = np.array([-0.9, 0.1])
        pruned, _ = prune_by_magnitude(weights, 0.5)
        assert pruned[0] == -0.9
        assert pruned[1] == 0.0

    def test_input_untouched(self, rng):
        weights = rng.random(10)
        original = weights.copy()
        prune_by_magnitude(weights, 0.5)
        assert np.array_equal(weights, original)

    def test_full_connectivity_keeps_everything(self, rng):
        weights = rng.random(10)
        pruned, mask = prune_by_magnitude(weights, 1.0)
        assert np.all(mask)
        assert np.array_equal(pruned, weights)

    def test_ties_trimmed_deterministically(self):
        weights = np.full(10, 0.5)
        _, mask = prune_by_magnitude(weights, 0.5)
        assert mask.sum() == 5

    def test_invalid_target_rejected(self, rng):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                prune_by_magnitude(rng.random(4), bad)

    def test_shape_preserved(self, rng):
        weights = rng.random((7, 3))
        pruned, mask = prune_by_magnitude(weights, 0.4)
        assert pruned.shape == mask.shape == (7, 3)


class TestPrunedCount:
    def test_count_math(self):
        assert pruned_weight_count(100, 0.5) == 50
        assert pruned_weight_count(3, 0.5) == 2  # ceil

    def test_validation(self):
        with pytest.raises(ValueError):
            pruned_weight_count(-1, 0.5)
        with pytest.raises(ValueError):
            pruned_weight_count(10, 0.0)

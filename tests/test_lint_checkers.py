"""Each checker catches its fixture violation — and the repo runs clean.

The fixture trees under ``tests/lint_fixtures/`` contain deliberate
violations; they are parsed by the linter, never imported.
"""

from pathlib import Path

import pytest

from repro.lint import (
    FingerprintCompletenessChecker,
    LockDisciplineChecker,
    LogDisciplineChecker,
    ProtocolConsistencyChecker,
    RngDisciplineChecker,
    WorkspaceDisciplineChecker,
    run_lint,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC_ROOT = Path(__file__).parent.parent / "src" / "repro"


class TestRngDiscipline:
    def test_fixture_violations(self):
        report = run_lint(
            FIXTURES / "rng_tree", checkers=[RngDisciplineChecker()]
        )
        assert [f.severity for f in report.findings] == ["error"] * 4
        messages = "\n".join(f.message for f in report.findings)
        assert "numpy.random.seed" in messages
        assert "numpy.random.rand" in messages
        assert "without a seed" in messages
        assert "stdlib random.random" in messages

    def test_suppression_comment_respected(self):
        report = run_lint(
            FIXTURES / "rng_tree", checkers=[RngDisciplineChecker()]
        )
        assert report.suppressed == 1
        # The suppressed np.random.rand() call is on line 23.
        assert all(f.line != 23 for f in report.findings)

    def test_seeded_generator_not_flagged(self):
        report = run_lint(
            FIXTURES / "rng_tree", checkers=[RngDisciplineChecker()]
        )
        # ``sanctioned`` (line 27) draws from default_rng(seed): clean.
        assert all(f.line < 25 for f in report.findings)


class TestLockDiscipline:
    def test_fixture_violation(self):
        report = run_lint(
            FIXTURES / "locks_tree", checkers=[LockDisciplineChecker()]
        )
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.severity == "error"
        assert finding.symbol == "Counter.reset"
        assert "self.total" in finding.message

    def test_locked_suffix_and_suppression_exempt(self):
        report = run_lint(
            FIXTURES / "locks_tree", checkers=[LockDisciplineChecker()]
        )
        symbols = {f.symbol for f in report.findings}
        assert "Counter._drain_locked" not in symbols  # suffix contract
        assert "Counter.clear_peak" not in symbols  # suppression comment
        assert report.suppressed == 1


class TestProtocolConsistency:
    def test_both_directions(self):
        report = run_lint(
            FIXTURES / "wire_tree", checkers=[ProtocolConsistencyChecker()]
        )
        op_findings = [f for f in report.findings if "op '" in f.message]
        errors = [f for f in op_findings if f.severity == "error"]
        warnings = [f for f in op_findings if f.severity == "warning"]
        assert len(errors) == 1
        assert "'leese'" in errors[0].message
        assert errors[0].path == "cluster/client.py"
        orphans = [f for f in warnings if "'orphan'" in f.message]
        assert len(orphans) == 1
        assert orphans[0].path == "cluster/coordinator.py"

    def test_matched_op_not_flagged(self):
        report = run_lint(
            FIXTURES / "wire_tree", checkers=[ProtocolConsistencyChecker()]
        )
        assert not any("'lease'" in f.message for f in report.findings)

    def test_worker_dispatch_covered(self):
        # The worker's peer dispatch is a handler table too: an op it
        # serves that a *different* module emits is matched...
        report = run_lint(
            FIXTURES / "wire_tree", checkers=[ProtocolConsistencyChecker()]
        )
        assert not any("'peer_get'" in f.message for f in report.findings)
        # ...but an op emitted only inside the handler's own module is
        # still a handler-without-emitter warning: self-emission never
        # crosses the wire.
        self_only = [f for f in report.findings if "'self_only'" in f.message]
        assert [f.severity for f in self_only] == ["warning"]
        assert self_only[0].path == "cluster/worker.py"

    def test_no_handler_module_means_no_findings(self):
        # A fixture subset without a coordinator cross-checks nothing.
        report = run_lint(
            FIXTURES / "rng_tree", checkers=[ProtocolConsistencyChecker()]
        )
        assert report.findings == []

    def test_http_emitted_without_route_is_error(self):
        report = run_lint(
            FIXTURES / "wire_tree", checkers=[ProtocolConsistencyChecker()]
        )
        pause = [f for f in report.findings if "/sweeps/{}/pause" in f.message]
        assert [f.severity for f in pause] == ["error"]
        assert pause[0].path == "cluster/http_api.py"
        assert "404" in pause[0].message

    def test_http_route_without_emitter_is_warning(self):
        report = run_lint(
            FIXTURES / "wire_tree", checkers=[ProtocolConsistencyChecker()]
        )
        cancel = [f for f in report.findings if "/sweeps/{}/cancel" in f.message]
        assert [f.severity for f in cancel] == ["warning"]
        assert "no in-tree client" in cancel[0].message

    def test_http_route_with_missing_handler_is_error(self):
        report = run_lint(
            FIXTURES / "wire_tree", checkers=[ProtocolConsistencyChecker()]
        )
        ghost = [f for f in report.findings if "'ghost'" in f.message]
        assert [f.severity for f in ghost] == ["error"]
        assert "_route_ghost" in ghost[0].message

    def test_http_matched_routes_not_flagged(self):
        # /fleet (constant path) and /sweeps/{sweep_id} (f-string
        # emission vs. {param} template) are emitted, routed and
        # handled: clean in both directions.
        report = run_lint(
            FIXTURES / "wire_tree", checkers=[ProtocolConsistencyChecker()]
        )
        assert not any("'/fleet'" in f.message for f in report.findings)
        status_key = "'/sweeps/{}'"
        assert not any(status_key in f.message for f in report.findings)


class TestWorkspaceDiscipline:
    def test_fixture_violations(self):
        report = run_lint(
            FIXTURES / "workspace_tree", checkers=[WorkspaceDisciplineChecker()]
        )
        assert [f.severity for f in report.findings] == ["warning"] * 3
        assert {f.symbol for f in report.findings} == {"run_fused_loop"}
        messages = "\n".join(f.message for f in report.findings)
        assert "np.zeros_like()" in messages
        assert "np.add() without out=" in messages
        assert ".copy()" in messages

    def test_out_kwarg_and_hoisted_allocations_clean(self):
        report = run_lint(
            FIXTURES / "workspace_tree", checkers=[WorkspaceDisciplineChecker()]
        )
        symbols = {f.symbol for f in report.findings}
        # out=-directed ufuncs and pre-loop allocations are the pattern.
        assert "fused_outside_loop" not in symbols
        # Functions without fused/frozen in the name are out of scope.
        assert "plain_helper" not in symbols

    def test_suppression_comment_respected(self):
        report = run_lint(
            FIXTURES / "workspace_tree", checkers=[WorkspaceDisciplineChecker()]
        )
        assert report.suppressed == 1
        assert "run_frozen_pass" not in {f.symbol for f in report.findings}

    def test_injected_loop_allocation_is_caught(self, tmp_path):
        """A fresh allocation slipped into the real fused loop trips lint."""
        network_src = (SRC_ROOT / "snn" / "network.py").read_text()
        needle = "np.copyto(ws.pre, pre_steps[t])"
        assert needle in network_src
        mutated = network_src.replace(
            needle,
            "scratch = np.zeros_like(drives[t])\n                " + needle,
            1,
        )
        (tmp_path / "network.py").write_text(mutated)
        report = run_lint(tmp_path, checkers=[WorkspaceDisciplineChecker()])
        assert any(
            "np.zeros_like()" in f.message
            and "_run_batch_stdp_fused" in f.symbol
            for f in report.findings
        ), [f.format() for f in report.findings]


class TestLogDiscipline:
    def test_fixture_violations(self):
        report = run_lint(
            FIXTURES / "logs_tree", checkers=[LogDisciplineChecker()]
        )
        assert [f.severity for f in report.findings] == ["warning"] * 3
        assert all(f.path == "bad_logs.py" for f in report.findings)
        messages = "\n".join(f.message for f in report.findings)
        assert "print() bypasses structured logging" in messages
        assert "getLogger() without a name" in messages
        # Both the attribute and the from-import spellings are caught.
        assert {f.line for f in report.findings} == {7, 8, 12}

    def test_cli_and_benchmark_surfaces_exempt(self):
        report = run_lint(
            FIXTURES / "logs_tree", checkers=[LogDisciplineChecker()]
        )
        paths = {f.path for f in report.findings}
        assert "cli.py" not in paths
        assert "benchmarks/bench_demo.py" not in paths

    def test_named_logger_and_suppression_clean(self):
        report = run_lint(
            FIXTURES / "logs_tree", checkers=[LogDisciplineChecker()]
        )
        # logging.getLogger(__name__) on line 6 is the sanctioned form.
        assert all(f.line != 6 for f in report.findings)
        # The annotated print in deliberate() is suppressed, not reported.
        assert report.suppressed == 1
        assert all(f.symbol != "deliberate" for f in report.findings)

    def test_injected_print_in_real_module_is_caught(self, tmp_path):
        """A print() slipped into the worker agent trips lint."""
        worker_src = (SRC_ROOT / "cluster" / "worker.py").read_text()
        needle = "class WorkerAgent"
        assert needle in worker_src
        mutated = worker_src.replace(
            needle, 'print("debug leftover")\n\n\n' + needle, 1
        )
        (tmp_path / "worker.py").write_text(mutated)
        report = run_lint(tmp_path, checkers=[LogDisciplineChecker()])
        assert any(
            "print() bypasses" in f.message for f in report.findings
        ), [f.format() for f in report.findings]


class TestFingerprintCompleteness:
    def test_undeclared_read_is_error(self):
        report = run_lint(
            FIXTURES / "fingerprint_tree",
            checkers=[FingerprintCompletenessChecker()],
        )
        errors = [f for f in report.findings if f.severity == "error"]
        assert len(errors) == 1
        assert "config.voltage" in errors[0].message
        assert errors[0].symbol == "LeakyStage.run"

    def test_unused_declared_field_is_info(self):
        report = run_lint(
            FIXTURES / "fingerprint_tree",
            checkers=[FingerprintCompletenessChecker()],
        )
        infos = [f for f in report.findings if f.severity == "info"]
        assert len(infos) == 1
        assert "'seed'" in infos[0].message
        assert infos[0].symbol == "LeakyStage.fields"

    def test_declared_reads_not_flagged(self):
        report = run_lint(
            FIXTURES / "fingerprint_tree",
            checkers=[FingerprintCompletenessChecker()],
        )
        messages = "\n".join(f.message for f in report.findings)
        assert "config.dataset" not in messages
        assert "config.n_train" not in messages


class TestRepoRunsClean:
    def test_source_tree_has_no_findings(self):
        """The committed tree passes its own linter (suppressions only)."""
        report = run_lint(SRC_ROOT)
        assert report.findings == [], [f.format() for f in report.findings]

    def test_injected_unfingerprinted_read_is_caught(self, tmp_path):
        """Adding an un-declared config read to a real stage trips lint.

        This is the cache-invalidation regression the rule exists for: a
        stage reading a config attribute outside its ``fields`` tuple
        would alias two different configs onto one cached artifact.
        """
        stages_src = (SRC_ROOT / "pipeline" / "stages.py").read_text()
        needle = "rng = np.random.default_rng(cfg.seed)"
        assert needle in stages_src
        mutated = stages_src.replace(
            needle, "_ = cfg.weak_cell_sigma\n        " + needle
        )
        (tmp_path / "core").mkdir()
        (tmp_path / "pipeline").mkdir()
        (tmp_path / "core" / "config.py").write_text(
            (SRC_ROOT / "core" / "config.py").read_text()
        )
        (tmp_path / "pipeline" / "stages.py").write_text(mutated)

        report = run_lint(
            tmp_path, checkers=[FingerprintCompletenessChecker()]
        )
        gating = [f for f in report.findings if f.gating]
        assert any(
            "config.weak_cell_sigma" in f.message
            and f.symbol == "TrainBaselineStage.run"
            for f in gating
        ), [f.format() for f in report.findings]

    def test_unmutated_copy_stays_clean(self, tmp_path):
        """Control for the injection test: the same copy, unmutated."""
        (tmp_path / "core").mkdir()
        (tmp_path / "pipeline").mkdir()
        (tmp_path / "core" / "config.py").write_text(
            (SRC_ROOT / "core" / "config.py").read_text()
        )
        (tmp_path / "pipeline" / "stages.py").write_text(
            (SRC_ROOT / "pipeline" / "stages.py").read_text()
        )
        report = run_lint(
            tmp_path, checkers=[FingerprintCompletenessChecker()]
        )
        assert [f for f in report.findings if f.gating] == []

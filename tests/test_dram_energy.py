"""Tests of the DRAMPower-substitute energy model (Fig. 2b, Table I)."""

import numpy as np
import pytest

from repro.dram.commands import AccessCondition, CommandKind
from repro.dram.energy import DramEnergyModel, PERIPHERAL_FRACTION
from repro.dram.organization import DramOrganization
from repro.dram.row_buffer import RowBufferSimulator
from repro.dram.specs import LPDDR3_1600_4GB, tiny_spec
from repro.dram.timing import timing_for_voltage

PAPER_TABLE1 = {
    1.325: 0.0392,
    1.250: 0.1429,
    1.175: 0.2433,
    1.100: 0.3359,
    1.025: 0.4240,
}


@pytest.fixture
def model():
    return DramEnergyModel(LPDDR3_1600_4GB)


class TestScalingLaws:
    def test_charge_scale_is_v_squared(self, model):
        assert model.charge_scale(1.35) == pytest.approx(1.0)
        assert model.charge_scale(1.025) == pytest.approx((1.025 / 1.35) ** 2)

    def test_standby_power_scales_v_squared(self, model):
        p_nom = model.standby_power_mw(1.35, active=True)
        p_low = model.standby_power_mw(1.025, active=True)
        assert p_low / p_nom == pytest.approx((1.025 / 1.35) ** 2)

    def test_active_standby_exceeds_idle(self, model):
        assert model.standby_power_mw(1.35, True) > model.standby_power_mw(1.35, False)

    def test_out_of_range_voltage_rejected(self, model):
        with pytest.raises(ValueError):
            model.charge_scale(0.2)
        with pytest.raises(ValueError):
            model.charge_scale(2.0)


class TestTable1:
    @pytest.mark.parametrize("v,paper", sorted(PAPER_TABLE1.items()))
    def test_per_access_savings_match_paper(self, model, v, paper):
        # Table I within half a percentage point: the paper's numbers
        # follow the CV² law almost exactly.
        assert model.energy_per_access_saving(v) == pytest.approx(paper, abs=0.005)

    def test_savings_monotone_in_voltage(self, model):
        voltages = sorted(PAPER_TABLE1)
        savings = [model.energy_per_access_saving(v) for v in voltages]
        assert all(a > b for a, b in zip(savings, savings[1:]))

    def test_zero_saving_at_nominal(self, model):
        assert model.energy_per_access_saving(1.35) == pytest.approx(0.0)


class TestAccessConditions:
    def test_hit_miss_conflict_ordering(self, model):
        # Fig. 2(b): hit < miss < conflict at every voltage.
        for v in (1.35, 1.025):
            hit = model.access_energy(AccessCondition.HIT, v).total_nj
            miss = model.access_energy(AccessCondition.MISS, v).total_nj
            conflict = model.access_energy(AccessCondition.CONFLICT, v).total_nj
            assert hit < miss < conflict

    def test_per_condition_savings_span_paper_range(self, model):
        # Fig. 2(b): 31%-42% savings per access at 1.025 V.
        savings = []
        for condition in AccessCondition:
            nominal = model.access_energy(condition, 1.35).total_nj
            reduced = model.access_energy(condition, 1.025).total_nj
            savings.append(1.0 - reduced / nominal)
        assert min(savings) == pytest.approx(0.31, abs=0.03)
        assert max(savings) == pytest.approx(0.42, abs=0.02)

    def test_absolute_scale_in_nanojoule_range(self, model):
        # Fig. 2(b) y-axis spans 0-8 nJ.
        conflict = model.access_energy(AccessCondition.CONFLICT, 1.35).total_nj
        assert 4.0 < conflict < 8.0

    def test_breakdown_components_sum(self, model):
        b = model.access_energy(AccessCondition.CONFLICT, 1.1)
        assert b.total_nj == pytest.approx(b.array_nj + b.peripheral_nj + b.standby_nj)
        assert b.charge_nj == pytest.approx(sum(b.per_command_nj.values()))

    def test_hit_contains_only_rd(self, model):
        b = model.access_energy(AccessCondition.HIT, 1.35)
        assert set(b.per_command_nj) == {CommandKind.RD}


class TestCommandEnergies:
    def test_peripheral_fraction_fixed_under_scaling(self, model):
        for kind in (CommandKind.ACT, CommandKind.PRE):
            _, p_nom = model.command_energy_split(kind, 1.35)
            _, p_low = model.command_energy_split(kind, 1.025)
            assert p_nom == pytest.approx(p_low)

    def test_array_energy_scales_v_squared(self, model):
        a_nom, _ = model.command_energy_split(CommandKind.ACT, 1.35)
        a_low, _ = model.command_energy_split(CommandKind.ACT, 1.025)
        assert a_low / a_nom == pytest.approx((1.025 / 1.35) ** 2)

    def test_write_costs_more_than_read(self, model):
        assert model.command_energy_nj(
            CommandKind.WR, 1.35
        ) > model.command_energy_nj(CommandKind.RD, 1.35)

    def test_invalid_peripheral_fraction_rejected(self):
        with pytest.raises(ValueError):
            DramEnergyModel(
                LPDDR3_1600_4GB, peripheral_fraction={CommandKind.ACT: 1.5}
            )

    def test_custom_peripheral_fraction_used(self):
        base = DramEnergyModel(LPDDR3_1600_4GB)
        all_array = DramEnergyModel(
            LPDDR3_1600_4GB, peripheral_fraction={k: 0.0 for k in CommandKind}
        )
        # With no fixed component, the conflict access saves the full V².
        nominal = all_array.access_energy(AccessCondition.CONFLICT, 1.35)
        reduced = all_array.access_energy(AccessCondition.CONFLICT, 1.025)
        charge_saving = 1.0 - reduced.charge_nj / nominal.charge_nj
        assert charge_saving == pytest.approx(1 - (1.025 / 1.35) ** 2, rel=1e-6)
        assert base is not all_array


class TestTraceEnergy:
    def test_trace_energy_consistent_with_commands(self):
        spec = tiny_spec()
        org = DramOrganization(spec)
        timing = timing_for_voltage(spec, 1.35)
        sim = RowBufferSimulator(org, timing)
        stats = sim.run([org.coordinate_of(s) for s in range(8)])
        model = DramEnergyModel(spec)
        energy = model.trace_energy(stats, 1.35)
        expected_commands = sum(
            model.command_energy_nj(kind, 1.35) * count
            for kind, count in stats.command_counts.items()
        )
        assert energy.command_nj == pytest.approx(expected_commands)
        assert energy.total_nj >= energy.command_nj

    def test_trace_energy_decreases_with_voltage(self):
        spec = tiny_spec()
        org = DramOrganization(spec)
        model = DramEnergyModel(spec)
        sim = RowBufferSimulator(org, timing_for_voltage(spec, 1.35))
        stats = sim.run([org.coordinate_of(s) for s in range(16)])
        e_nom = model.trace_energy(stats, 1.35).total_nj
        e_low = model.trace_energy(stats, 1.025).total_nj
        assert e_low < e_nom

    def test_total_mj_conversion(self):
        spec = tiny_spec()
        org = DramOrganization(spec)
        model = DramEnergyModel(spec)
        sim = RowBufferSimulator(org, timing_for_voltage(spec, 1.35))
        stats = sim.run([org.coordinate_of(0)])
        e = model.trace_energy(stats, 1.35)
        assert e.total_mj == pytest.approx(e.total_nj * 1e-6)

"""Tests of the adaptive LIF neuron layer."""

import numpy as np
import pytest

from repro.snn.neurons import AdaptiveLIFLayer, LIFParameters


@pytest.fixture
def layer():
    return AdaptiveLIFLayer(n_neurons=5)


class TestParameters:
    def test_defaults_valid(self):
        LIFParameters().validate()

    def test_bad_time_constant_rejected(self):
        with pytest.raises(ValueError):
            LIFParameters(tau_membrane_ms=0).validate()

    def test_reset_above_threshold_rejected(self):
        with pytest.raises(ValueError):
            LIFParameters(v_reset=0.0, v_threshold=-52.0).validate()

    def test_layer_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            AdaptiveLIFLayer(0)
        with pytest.raises(ValueError):
            AdaptiveLIFLayer(5, dt_ms=0)


class TestDynamics:
    def test_starts_at_rest(self, layer):
        assert np.all(layer.v == layer.parameters.v_rest)
        assert np.all(layer.theta == 0.0)

    def test_decays_toward_rest_without_input(self, layer):
        layer.v[:] = -55.0
        zero = np.zeros(5)
        layer.step(zero, zero)
        assert np.all(layer.v < -55.0)
        assert np.all(layer.v > layer.parameters.v_rest)

    def test_excitation_raises_potential(self, layer):
        v0 = layer.v.copy()
        layer.step(np.full(5, 0.5), np.zeros(5))
        assert np.all(layer.v > v0)

    def test_inhibition_lowers_potential(self, layer):
        zero = np.zeros(5)
        layer.step(zero, np.full(5, 0.5))
        assert np.all(layer.v < layer.parameters.v_rest)

    def test_strong_input_fires_and_resets(self, layer):
        spikes = layer.step(np.full(5, 100.0), np.zeros(5))
        assert np.all(spikes)
        assert np.all(layer.v == layer.parameters.v_reset)

    def test_membrane_decay_is_exponential_shape(self):
        # Fig. 4(b): potential decreases exponentially without input.
        layer = AdaptiveLIFLayer(1, LIFParameters(tau_membrane_ms=10.0))
        layer.v[:] = -55.0
        zero = np.zeros(1)
        gaps = []
        for _ in range(3):
            before = layer.v[0] - layer.parameters.v_rest
            layer.step(zero, zero)
            after = layer.v[0] - layer.parameters.v_rest
            gaps.append(after / before)
        assert gaps[0] == pytest.approx(gaps[1], rel=1e-6)
        assert gaps[1] == pytest.approx(gaps[2], rel=1e-6)


class TestRefractory:
    def test_refractory_blocks_integration(self, layer):
        layer.step(np.full(5, 100.0), np.zeros(5))  # fire
        v_after = layer.v.copy()
        spikes = layer.step(np.full(5, 100.0), np.zeros(5))
        assert not np.any(spikes)
        assert np.array_equal(layer.v, v_after)

    def test_refractory_expires(self):
        params = LIFParameters(refractory_ms=2.0)
        layer = AdaptiveLIFLayer(1, params)
        layer.step(np.array([100.0]), np.zeros(1))  # fire at t=0
        for _ in range(2):
            layer.step(np.array([100.0]), np.zeros(1))
        spikes = layer.step(np.array([100.0]), np.zeros(1))
        assert spikes[0]


class TestAdaptiveThreshold:
    def test_theta_grows_on_spike(self, layer):
        layer.step(np.full(5, 100.0), np.zeros(5))
        assert np.all(layer.theta == pytest.approx(layer.parameters.theta_plus))

    def test_theta_frozen_when_adapt_false(self, layer):
        layer.step(np.full(5, 100.0), np.zeros(5), adapt=False)
        assert np.all(layer.theta == 0.0)

    def test_theta_raises_effective_threshold(self):
        params = LIFParameters(theta_plus=100.0, refractory_ms=0.0)
        layer = AdaptiveLIFLayer(1, params)
        layer.step(np.array([100.0]), np.zeros(1))  # fire, theta jumps
        fired = []
        for _ in range(10):
            fired.append(layer.step(np.array([10.0]), np.zeros(1))[0])
        assert not any(fired)  # theta now too high for this drive

    def test_theta_decays_slowly(self, layer):
        layer.theta[:] = 1.0
        layer.step(np.zeros(5), np.zeros(5))
        assert np.all(layer.theta < 1.0)
        assert np.all(layer.theta > 0.999)


class TestStateManagement:
    def test_reset_keeps_theta_by_default(self, layer):
        layer.step(np.full(5, 100.0), np.zeros(5))
        theta = layer.theta.copy()
        layer.reset_state()
        assert np.array_equal(layer.theta, theta)
        assert np.all(layer.v == layer.parameters.v_rest)

    def test_reset_can_clear_theta(self, layer):
        layer.step(np.full(5, 100.0), np.zeros(5))
        layer.reset_state(keep_theta=False)
        assert np.all(layer.theta == 0.0)

    def test_snapshot_roundtrip(self, layer):
        layer.step(np.full(5, 100.0), np.zeros(5))
        snap = layer.state_snapshot()
        layer.step(np.full(5, 3.0), np.zeros(5))
        layer.load_state(snap)
        assert np.array_equal(layer.v, snap["v"])
        assert np.array_equal(layer.theta, snap["theta"])

    def test_load_state_validates_shape(self, layer):
        snap = layer.state_snapshot()
        snap["v"] = np.zeros(3)
        with pytest.raises(ValueError):
            layer.load_state(snap)


class TestBatchedState:
    def test_batch_shape_state_arrays(self):
        layer = AdaptiveLIFLayer(6, batch_shape=(3, 4))
        assert layer.state_shape == (3, 4, 6)
        assert layer.v.shape == (3, 4, 6)
        assert layer.theta.shape == (3, 4, 6)
        assert layer.refractory_left.shape == (3, 4, 6)

    def test_batched_step_matches_scalar_per_element(self):
        rng = np.random.default_rng(0)
        g_e = rng.random((2, 5, 8)) * 2.0
        g_i = rng.random((2, 5, 8))
        batched = AdaptiveLIFLayer(8, batch_shape=(2, 5))
        spikes = batched.step(g_e, g_i, adapt=True)
        assert spikes.shape == (2, 5, 8)
        for e in range(2):
            for b in range(5):
                scalar = AdaptiveLIFLayer(8)
                assert np.array_equal(scalar.step(g_e[e, b], g_i[e, b]), spikes[e, b])
                assert np.array_equal(scalar.v, batched.v[e, b])
                assert np.array_equal(scalar.theta, batched.theta[e, b])

    def test_set_batch_shape_preserves_theta_vector(self):
        layer = AdaptiveLIFLayer(4)
        layer.theta = np.array([0.1, 0.2, 0.3, 0.4])
        layer.set_batch_shape((2, 3))
        assert layer.theta.shape == (2, 3, 4)
        assert np.array_equal(layer.theta[1, 2], [0.1, 0.2, 0.3, 0.4])
        layer.set_batch_shape(())
        assert np.array_equal(layer.theta, [0.1, 0.2, 0.3, 0.4])

    def test_batched_snapshot_roundtrip(self):
        layer = AdaptiveLIFLayer(3, batch_shape=(2,))
        layer.step(np.ones((2, 3)) * 5, np.zeros((2, 3)))
        snap = layer.state_snapshot()
        other = AdaptiveLIFLayer(3, batch_shape=(2,))
        other.load_state(snap)
        assert np.array_equal(other.v, layer.v)
        with pytest.raises(ValueError):
            AdaptiveLIFLayer(3).load_state(snap)

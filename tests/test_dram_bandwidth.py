"""Tests of the bandwidth accounting module."""

import pytest

from repro.dram.bandwidth import bandwidth_report, peak_bandwidth_gbps
from repro.dram.controller import DramController
from repro.dram.specs import LPDDR3_1600_4GB, tiny_spec


class TestPeak:
    def test_lpddr3_1600_sustained_peak(self):
        # 64-bit column per 5 ns burst window -> 1.6 GB/s sustained
        assert peak_bandwidth_gbps(LPDDR3_1600_4GB) == pytest.approx(1.6)


class TestReport:
    def test_streaming_hits_approach_peak(self):
        controller = DramController(LPDDR3_1600_4GB)
        result = controller.execute(list(range(4096)), 1.35)
        report = bandwidth_report(LPDDR3_1600_4GB, result.stats, result.timing)
        assert report.efficiency > 0.9  # hit-dominated stream saturates the bus
        assert report.bus_utilization > 0.9
        assert report.achieved_gbps <= report.peak_gbps + 1e-9

    def test_conflict_heavy_trace_loses_bandwidth(self):
        controller = DramController(tiny_spec())
        org = controller.organization
        g = org.geometry
        # ping-pong between two rows of the same bank: all conflicts
        a, b = 0, g.columns_per_row
        trace = [a, b] * 20
        result = controller.execute(trace, 1.35)
        report = bandwidth_report(tiny_spec(), result.stats, result.timing)
        assert report.efficiency < 0.3

    def test_empty_trace(self):
        controller = DramController(tiny_spec())
        result = controller.execute([], 1.35)
        report = bandwidth_report(tiny_spec(), result.stats, result.timing)
        assert report.achieved_gbps == 0.0
        assert report.efficiency == 0.0

"""Tests of the batched vectorized evaluation engine (repro.engine).

The load-bearing property is *bit-identity*: the batched engine must
produce exactly the per-neuron spike counts of the sequential
per-sample loop at the same seed — for single weights, for E>1
realization stacks, and across ragged chunk boundaries.
"""

import numpy as np
import pytest

from repro.engine import BatchedEvaluator, ChunkPolicy, encode_spike_trains
from repro.engine.evaluator import ENGINES
from repro.errors.injection import ErrorInjector
from repro.snn.encoding import poisson_rate_code
from repro.snn.network import DiehlCookNetwork, NetworkParameters, sample_drive
from repro.snn.quantization import Float32Representation
from repro.snn.training import run_spike_counts, evaluate_accuracy


PARAMS = NetworkParameters(n_input=64, n_neurons=20)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(11)
    network = DiehlCookNetwork(PARAMS, rng=rng)
    images = rng.random((13, PARAMS.n_input))
    injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=5)
    stack, _ = injector.inject_stack(
        network.weights, (1e-3, 1e-2), n_realizations=2, rng=np.random.default_rng(9)
    )
    return network, images, stack


def _counts(network, images, stack_or_weights, engine, chunk_policy=None, seed=21):
    evaluator = BatchedEvaluator.for_network(
        network, engine=engine, chunk_policy=chunk_policy
    )
    return evaluator.spike_counts(
        images, 25, np.random.default_rng(seed), weights=stack_or_weights
    )


class TestSpikeCountIdentity:
    def test_single_weights_fixed_seed_identity(self, setup):
        network, images, _ = setup
        batched = _counts(network, images, network.weights, "batched")
        sequential = _counts(network, images, network.weights, "sequential")
        assert batched.shape == (len(images), PARAMS.n_neurons)
        assert batched.sum() > 0, "test network must actually spike"
        assert np.array_equal(batched, sequential)

    def test_realization_stack_identity(self, setup):
        network, images, stack = setup
        batched = _counts(network, images, stack, "batched")
        sequential = _counts(network, images, stack, "sequential")
        assert batched.shape == (len(stack), len(images), PARAMS.n_neurons)
        assert np.array_equal(batched, sequential)

    def test_stack_matches_manual_run_sample_loop(self, setup):
        network, images, stack = setup
        batched = _counts(network, images, stack, "batched")
        # Hand-rolled reference: encode every image (same stream), then
        # loop realizations x samples through the scalar legacy API.
        rng = np.random.default_rng(21)
        trains = [poisson_rate_code(img, 25, rng=rng) for img in images]
        ref_net = DiehlCookNetwork(PARAMS, init_weights=False)
        ref_net.neurons.theta = network.neurons.theta.copy()
        for e in range(len(stack)):
            ref_net.set_weights(stack[e])
            for b, train in enumerate(trains):
                assert np.array_equal(
                    batched[e, b], ref_net.run_sample(train, stdp=None)
                )

    def test_ragged_final_chunk_identity(self, setup):
        network, images, stack = setup
        unchunked = _counts(network, images, stack, "batched")
        # 13 samples in chunks of 5 -> final chunk of 3 (ragged).
        ragged = _counts(
            network, images, stack, "batched",
            chunk_policy=ChunkPolicy(max_samples=5),
        )
        assert np.array_equal(unchunked, ragged)
        ragged_seq = _counts(
            network, images, stack, "sequential",
            chunk_policy=ChunkPolicy(max_samples=5),
        )
        assert np.array_equal(unchunked, ragged_seq)

    def test_evaluator_does_not_mutate_network(self, setup):
        network, images, stack = setup
        weights_before = network.weights.copy()
        theta_before = network.neurons.theta.copy()
        _counts(network, images, stack, "batched")
        assert np.array_equal(network.weights, weights_before)
        assert np.array_equal(network.neurons.theta, theta_before)


class TestAccuracies:
    def test_stack_accuracies_shape_and_range(self, setup):
        network, images, stack = setup
        evaluator = BatchedEvaluator.for_network(network)
        labels = np.arange(len(images)) % 10
        assignments = np.arange(PARAMS.n_neurons) % 10
        accs = evaluator.accuracies(
            images, labels, assignments, 25, np.random.default_rng(3), weights=stack
        )
        assert accs.shape == (len(stack),)
        assert ((0.0 <= accs) & (accs <= 1.0)).all()

    def test_single_weights_accuracy_is_scalar(self, setup):
        network, images, _ = setup
        evaluator = BatchedEvaluator.for_network(network)
        labels = np.arange(len(images)) % 10
        assignments = np.arange(PARAMS.n_neurons) % 10
        acc = evaluator.accuracies(
            images, labels, assignments, 25, np.random.default_rng(3),
            weights=network.weights,
        )
        assert isinstance(acc, float)


class TestTrainingHelpersRouting:
    def test_run_spike_counts_engines_agree(self, setup):
        network, images, _ = setup
        batched = run_spike_counts(
            network, images, 25, np.random.default_rng(7), engine="batched"
        )
        sequential = run_spike_counts(
            network, images, 25, np.random.default_rng(7), engine="sequential"
        )
        assert np.array_equal(batched, sequential)

    def test_evaluate_accuracy_engines_agree(self, setup):
        network, images, _ = setup
        labels = np.arange(len(images)) % 10
        assignments = np.arange(PARAMS.n_neurons) % 10
        kwargs = dict(n_steps=25, n_classes=10)
        a = evaluate_accuracy(
            network, images, labels, assignments, kwargs["n_steps"],
            np.random.default_rng(5), engine="batched",
        )
        b = evaluate_accuracy(
            network, images, labels, assignments, kwargs["n_steps"],
            np.random.default_rng(5), engine="sequential",
        )
        assert a == b

    def test_custom_encoder_still_vectorizes_simulation(self, setup):
        network, images, _ = setup

        def encoder(image, n_steps, rng):
            return poisson_rate_code(image, n_steps, rng=rng)

        batched = run_spike_counts(
            network, images, 25, np.random.default_rng(7), encoder=encoder
        )
        default = run_spike_counts(
            network, images, 25, np.random.default_rng(7)
        )
        assert np.array_equal(batched, default)


class TestEncoding:
    def test_batch_encode_matches_per_image_stream(self):
        rng = np.random.default_rng(0)
        images = rng.random((6, 30))
        batch_rng = np.random.default_rng(42)
        loop_rng = np.random.default_rng(42)
        batch = encode_spike_trains(images, 17, batch_rng)
        loop = np.stack([poisson_rate_code(img, 17, rng=loop_rng) for img in images])
        assert np.array_equal(batch, loop)
        # ...and the generators end in the same state.
        assert batch_rng.bit_generator.state == loop_rng.bit_generator.state

    def test_rejects_out_of_range_images(self):
        with pytest.raises(ValueError):
            encode_spike_trains(np.array([[0.0, 1.5]]), 5, np.random.default_rng())

    def test_empty_batch(self):
        out = encode_spike_trains(
            np.empty((0, 12)), 5, np.random.default_rng(0)
        )
        assert out.shape == (0, 5, 12)


class TestChunkPolicy:
    def test_budget_bounds_chunk(self):
        policy = ChunkPolicy(max_bytes=64 * 1024 * 1024)
        chunk = policy.samples_per_chunk(8, 100, 784, 400)
        assert chunk >= 1
        assert policy.bytes_per_sample(8, 100, 784, 400) * chunk <= policy.max_bytes
        # halving the realization count roughly doubles the chunk
        assert policy.samples_per_chunk(4, 100, 784, 400) > chunk

    def test_minimum_one_sample(self):
        policy = ChunkPolicy(max_bytes=1)
        assert policy.samples_per_chunk(32, 100, 784, 3600) == 1

    def test_max_samples_cap(self):
        policy = ChunkPolicy(max_samples=4)
        assert policy.samples_per_chunk(1, 10, 10, 10) == 4

    def test_iter_chunks_ragged(self):
        policy = ChunkPolicy()
        slices = list(policy.iter_chunks(13, 5))
        assert [s.stop - s.start for s in slices] == [5, 5, 3]
        assert slices[-1] == slice(10, 13)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkPolicy(max_bytes=0)
        with pytest.raises(ValueError):
            ChunkPolicy(max_samples=0)
        with pytest.raises(ValueError):
            list(ChunkPolicy().iter_chunks(10, 0))


class TestInjectStack:
    def test_matches_sequential_inject_uniform(self, setup):
        network, _, _ = setup
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=3)
        stack, reports = injector.inject_stack(
            network.weights, (1e-3, 1e-2), n_realizations=3,
            rng=np.random.default_rng(17),
        )
        ref_injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=3)
        ref_rng = np.random.default_rng(17)
        assert stack.shape == (6,) + network.weights.shape
        assert len(reports) == 6
        index = 0
        for ber in (1e-3, 1e-2):
            for _ in range(3):
                expected, report = ref_injector.inject_uniform(
                    network.weights, ber, rng=ref_rng
                )
                assert np.array_equal(stack[index], expected)
                assert reports[index].flipped_bits == report.flipped_bits
                index += 1

    def test_scalar_ber(self, setup):
        network, _, _ = setup
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=3)
        stack, reports = injector.inject_stack(network.weights, 1e-2)
        assert stack.shape == (1,) + network.weights.shape
        assert len(reports) == 1

    def test_validation(self, setup):
        network, _, _ = setup
        injector = ErrorInjector(Float32Representation(), seed=3)
        with pytest.raises(ValueError):
            injector.inject_stack(network.weights, 1e-3, n_realizations=0)
        with pytest.raises(ValueError):
            injector.inject_stack(network.weights, ())


class TestValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            BatchedEvaluator(PARAMS, engine="warp-drive")
        assert ENGINES == ("batched", "sequential")

    def test_theta_shape_checked(self):
        with pytest.raises(ValueError):
            BatchedEvaluator(PARAMS, theta=np.zeros(3))

    def test_weight_shape_checked(self):
        evaluator = BatchedEvaluator(PARAMS)
        with pytest.raises(ValueError):
            evaluator.spike_counts(
                np.zeros((2, PARAMS.n_input)), 5, np.random.default_rng(0),
                weights=np.zeros((3, 3)),
            )

    def test_image_shape_checked(self):
        evaluator = BatchedEvaluator(PARAMS)
        with pytest.raises(ValueError):
            evaluator.spike_counts(
                np.zeros((2, 5)), 5, np.random.default_rng(0),
                weights=np.zeros((PARAMS.n_input, PARAMS.n_neurons)),
            )


class TestSampleDrive:
    def test_matches_full_matmul(self):
        rng = np.random.default_rng(2)
        train = rng.random((9, 40)) < 0.2
        weights = rng.random((40, 7))
        expected = train.astype(np.float64) @ weights
        assert np.allclose(sample_drive(train, weights), expected)

    def test_empty_train_gives_zero_drive(self):
        drive = sample_drive(np.zeros((5, 8), dtype=bool), np.ones((8, 3)))
        assert drive.shape == (5, 3)
        assert not drive.any()


class TestDriveIdentity:
    """sample_drive rows must equal the scalar per-step index-sum bit
    for bit — the property the whole engine equivalence rests on."""

    def _train(self, density=0.05, seed=3):
        rng = np.random.default_rng(seed)
        return rng.random((40, 96)) < density

    def test_rows_match_step_drive(self):
        from repro.snn.network import step_drive

        rng = np.random.default_rng(1)
        weights = rng.random((96, 31))
        train = self._train()
        rows = sample_drive(train, weights)
        for t in range(train.shape[0]):
            assert np.array_equal(rows[t], step_drive(weights, train[t]))

    def test_numpy_fallback_matches(self, monkeypatch):
        import repro.snn.network as network_module

        rng = np.random.default_rng(2)
        weights = rng.random((96, 31))
        train = self._train()
        with_scipy = sample_drive(train, weights)
        monkeypatch.setattr(network_module, "_sparse", None)
        without_scipy = sample_drive(train, weights)
        assert np.array_equal(with_scipy, without_scipy)

    def test_engines_agree_without_scipy(self, monkeypatch, setup):
        import repro.snn.network as network_module

        monkeypatch.setattr(network_module, "_sparse", None)
        network, images, stack = setup
        batched = _counts(network, images[:4], stack, "batched")
        sequential = _counts(network, images[:4], stack, "sequential")
        assert np.array_equal(batched, sequential)


class TestFloat32Engine:
    def test_engines_agree_at_float32(self, setup):
        network, images, stack = setup
        counts = {}
        for engine in ENGINES:
            evaluator = BatchedEvaluator.for_network(
                network, engine=engine, dtype=np.float32
            )
            counts[engine] = evaluator.spike_counts(
                images, 25, np.random.default_rng(21), weights=stack
            )
        assert counts["batched"].sum() > 0
        assert np.array_equal(counts["batched"], counts["sequential"])

    def test_for_network_inherits_dtype(self):
        net = DiehlCookNetwork(PARAMS, init_weights=False, dtype=np.float32)
        evaluator = BatchedEvaluator.for_network(net)
        assert evaluator.dtype == np.dtype(np.float32)
        assert evaluator.theta.dtype == np.dtype(np.float32)

    def test_non_finite_drive_keeps_engines_identical(self):
        # float32 overflow in spikes @ weights produces inf drives; the
        # fused batched loop must leave refractory neurons untouched
        # exactly like the scalar np.where path (no inf * 0 = NaN).
        rng = np.random.default_rng(6)
        huge = np.full((PARAMS.n_input, PARAMS.n_neurons), 3e38, dtype=np.float32)
        images = rng.random((4, PARAMS.n_input))
        counts = {}
        with np.errstate(over="ignore", invalid="ignore"):
            for engine in ENGINES:
                evaluator = BatchedEvaluator(PARAMS, engine=engine, dtype=np.float32)
                counts[engine] = evaluator.spike_counts(
                    images, 10, np.random.default_rng(2), weights=huge
                )
        assert np.array_equal(counts["batched"], counts["sequential"])
        assert counts["batched"].sum() > 0

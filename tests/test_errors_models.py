"""Tests of the Section III error models (Models 0-3)."""

import numpy as np
import pytest

from repro.errors.models import (
    BitContext,
    ErrorModel0,
    ErrorModel1,
    ErrorModel2,
    ErrorModel3,
    make_error_model,
)


def make_context(n_bits=100_000, rate=1e-3, lanes=64, rows=4096, values=None):
    positions = np.arange(n_bits, dtype=np.int64)
    return BitContext(
        n_bits=n_bits,
        base_rate=rate,
        bitline_of=positions % lanes,
        wordline_of=positions // rows,
        values=values,
    )


class TestBitContext:
    def test_validation_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            BitContext(n_bits=10, base_rate=1.5)

    def test_validation_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            BitContext(n_bits=10, base_rate=0.1, bitline_of=np.zeros(5, dtype=int))

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            BitContext(n_bits=-1, base_rate=0.1)


class TestModel0:
    def test_achieved_rate_close_to_requested(self):
        model = ErrorModel0()
        ctx = make_context(n_bits=500_000, rate=1e-3)
        rng = np.random.default_rng(0)
        flips = model.sample_flips(ctx, rng)
        achieved = flips.size / ctx.n_bits
        assert achieved == pytest.approx(1e-3, rel=0.2)

    def test_zero_rate_no_flips(self):
        flips = ErrorModel0().sample_flips(
            make_context(rate=0.0), np.random.default_rng(0)
        )
        assert flips.size == 0

    def test_rate_one_flips_everything(self):
        ctx = make_context(n_bits=100, rate=1.0)
        flips = ErrorModel0().sample_flips(ctx, np.random.default_rng(0))
        assert np.array_equal(flips, np.arange(100))

    def test_flips_sorted_unique_in_range(self):
        ctx = make_context(n_bits=10_000, rate=0.01)
        flips = ErrorModel0().sample_flips(ctx, np.random.default_rng(1))
        assert np.all(np.diff(flips) > 0)
        assert flips.min() >= 0 and flips.max() < ctx.n_bits

    def test_empty_context(self):
        ctx = BitContext(n_bits=0, base_rate=0.5)
        assert ErrorModel0().sample_flips(ctx, np.random.default_rng(0)).size == 0


class TestModel1:
    def test_requires_bitlines(self):
        ctx = BitContext(n_bits=100, base_rate=0.1)
        with pytest.raises(ValueError, match="bitline"):
            ErrorModel1().sample_flips(ctx, np.random.default_rng(0))

    def test_errors_concentrate_on_weak_bitlines(self):
        # Vertical structure: flip counts per bitline should be far more
        # dispersed than a uniform model would produce.
        model = ErrorModel1(sigma=2.0, structure_seed=7)
        ctx = make_context(n_bits=640_000, rate=5e-3, lanes=64)
        rng = np.random.default_rng(0)
        flips = model.sample_flips(ctx, rng)
        per_lane = np.bincount(flips % 64, minlength=64)
        uniform = ErrorModel0().sample_flips(ctx, np.random.default_rng(1))
        per_lane_uniform = np.bincount(uniform % 64, minlength=64)
        assert per_lane.std() > 2 * per_lane_uniform.std()

    def test_mean_rate_preserved(self):
        model = ErrorModel1(sigma=1.0, structure_seed=3)
        ctx = make_context(n_bits=400_000, rate=2e-3)
        flips = model.sample_flips(ctx, np.random.default_rng(2))
        assert flips.size / ctx.n_bits == pytest.approx(2e-3, rel=0.3)


class TestModel2:
    def test_requires_wordlines(self):
        ctx = BitContext(n_bits=100, base_rate=0.1)
        with pytest.raises(ValueError, match="wordline"):
            ErrorModel2().sample_flips(ctx, np.random.default_rng(0))

    def test_errors_concentrate_on_weak_wordlines(self):
        model = ErrorModel2(sigma=2.0, structure_seed=11)
        n_bits, row_bits = 400_000, 10_000
        positions = np.arange(n_bits, dtype=np.int64)
        ctx = BitContext(
            n_bits=n_bits, base_rate=5e-3, wordline_of=positions // row_bits
        )
        flips = model.sample_flips(ctx, np.random.default_rng(0))
        per_row = np.bincount(flips // row_bits, minlength=n_bits // row_bits)
        uniform = ErrorModel0().sample_flips(ctx, np.random.default_rng(1))
        per_row_uniform = np.bincount(uniform // row_bits, minlength=n_bits // row_bits)
        assert per_row.std() > 2 * per_row_uniform.std()


class TestModel3:
    def test_requires_values(self):
        ctx = BitContext(n_bits=100, base_rate=0.1)
        with pytest.raises(ValueError, match="values"):
            ErrorModel3().sample_flips(ctx, np.random.default_rng(0))

    def test_ones_fail_more_than_zeros(self):
        n = 400_000
        values = (np.arange(n) % 2).astype(np.uint8)  # half ones
        ctx = BitContext(n_bits=n, base_rate=2e-3, values=values)
        model = ErrorModel3(one_to_zero_ratio=4.0)
        flips = model.sample_flips(ctx, np.random.default_rng(0))
        flipped_ones = int(values[flips].sum())
        flipped_zeros = flips.size - flipped_ones
        assert flipped_ones > 2 * flipped_zeros

    def test_overall_rate_preserved_on_balanced_data(self):
        n = 400_000
        values = (np.arange(n) % 2).astype(np.uint8)
        ctx = BitContext(n_bits=n, base_rate=2e-3, values=values)
        flips = ErrorModel3().sample_flips(ctx, np.random.default_rng(1))
        assert flips.size / n == pytest.approx(2e-3, rel=0.3)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            ErrorModel3(one_to_zero_ratio=0.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("model0", ErrorModel0),
            ("Model-1", ErrorModel1),
            ("error_model_2", ErrorModel2),
            ("MODEL3", ErrorModel3),
        ],
    )
    def test_names_resolve(self, name, cls):
        assert isinstance(make_error_model(name), cls)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown error model"):
            make_error_model("model9")


class TestEdenModel:
    def _context(self, n_bits=20000, rate=0.01, seed=0):
        rng = np.random.default_rng(seed)
        return BitContext(
            n_bits=n_bits,
            base_rate=rate,
            wordline_of=np.repeat(np.arange(n_bits // 100), 100).astype(np.int64),
            values=(rng.random(n_bits) < 0.5).astype(np.uint8),
        )

    def test_requires_wordlines_and_values(self):
        from repro.errors.models import ErrorModelEden

        model = ErrorModelEden()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            model.sample_flips(BitContext(10, 0.1, values=np.zeros(10, np.uint8)), rng)
        with pytest.raises(ValueError):
            model.sample_flips(
                BitContext(10, 0.1, wordline_of=np.zeros(10, np.int64)), rng
            )

    def test_mean_rate_near_base(self):
        from repro.errors.models import ErrorModelEden

        model = ErrorModelEden(sigma=0.4)
        context = self._context(n_bits=200000, rate=0.01)
        flips = model.sample_flips(context, np.random.default_rng(1))
        achieved = flips.size / context.n_bits
        assert 0.005 < achieved < 0.02

    def test_ones_fail_more_than_zeros(self):
        from repro.errors.models import ErrorModelEden

        model = ErrorModelEden(sigma=0.0, one_to_zero_ratio=8.0)
        context = self._context(n_bits=200000, rate=0.02)
        flips = model.sample_flips(context, np.random.default_rng(2))
        flipped_values = context.values[flips]
        ones = int((flipped_values != 0).sum())
        zeros = int((flipped_values == 0).sum())
        assert ones > 3 * zeros

    def test_declared_context_fields(self):
        from repro.errors.models import ErrorModelEden

        assert ErrorModelEden.context_fields == ("wordline_of", "values")

    def test_ratio_validation(self):
        from repro.errors.models import ErrorModelEden

        with pytest.raises(ValueError):
            ErrorModelEden(one_to_zero_ratio=0.0)

    def test_injector_builds_eden_context(self):
        from repro.errors.injection import ErrorInjector
        from repro.errors.models import ErrorModelEden
        from repro.snn.quantization import FixedPointRepresentation

        injector = ErrorInjector(
            FixedPointRepresentation(8), model=ErrorModelEden(), seed=4
        )
        weights = np.random.default_rng(3).random((40, 30))
        corrupted, report = injector.inject_uniform(weights, 0.01)
        assert corrupted.shape == weights.shape
        assert report.flipped_bits > 0

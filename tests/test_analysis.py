"""Tests of the analysis helpers: platforms (Fig. 1b), sweeps, reporting."""

import numpy as np
import pytest

from repro.analysis.platforms import (
    PAPER_PLATFORMS,
    PEASE,
    SNNAP,
    SNNWorkload,
    TRUENORTH,
    energy_breakdown,
)
from repro.analysis.reporting import format_percent_row, format_table
from repro.analysis.sweeps import energy_vs_voltage_sweep
from repro.dram.specs import tiny_spec


class TestWorkload:
    def test_for_network_counts(self):
        w = SNNWorkload.for_network(
            n_input=10, n_neurons=5, n_steps=100, input_rate=0.1, output_rate=0.1
        )
        assert w.synaptic_ops == 10 * 100 * 0.1 * 5
        assert w.weight_bits_fetched == 10 * 5 * 32

    def test_validation(self):
        with pytest.raises(ValueError):
            SNNWorkload(synaptic_ops=-1, spike_events=0, weight_bits_fetched=0)
        with pytest.raises(ValueError):
            SNNWorkload.for_network(10, 5, 10, input_rate=1.5)


class TestPlatforms:
    def test_three_paper_platforms(self):
        assert [p.name for p in PAPER_PLATFORMS] == ["TrueNorth", "PEASE", "SNNAP"]

    @pytest.mark.parametrize("platform", PAPER_PLATFORMS, ids=lambda p: p.name)
    def test_fractions_sum_to_one(self, platform):
        fractions = energy_breakdown(platform)
        assert sum(fractions.values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("platform", PAPER_PLATFORMS, ids=lambda p: p.name)
    def test_memory_dominates(self, platform):
        # The paper's Fig. 1(b) claim: memory accesses consume ~50-75%
        # of total energy on every platform.
        fractions = energy_breakdown(platform)
        assert 0.45 <= fractions["memory"] <= 0.80
        assert fractions["memory"] > fractions["computation"]
        assert fractions["memory"] > fractions["communication"]

    def test_truenorth_heaviest_on_communication(self):
        tn = energy_breakdown(TRUENORTH)["communication"]
        pe = energy_breakdown(PEASE)["communication"]
        sn = energy_breakdown(SNNAP)["communication"]
        assert tn > pe and tn > sn

    def test_zero_workload_rejected(self):
        empty = SNNWorkload(synaptic_ops=0, spike_events=0, weight_bits_fetched=0)
        with pytest.raises(ValueError):
            TRUENORTH.fractions(empty)


class TestSweeps:
    def test_energy_vs_voltage_monotone(self):
        # tiny spec has 128 column slots; 64 fp32 weights need 64 slots
        energies = energy_vs_voltage_sweep(
            tiny_spec(), n_weights=64, bits_per_weight=32,
            voltages=(1.35, 1.175, 1.025),
        )
        assert energies[1.35] > energies[1.175] > energies[1.025]

    def test_refetch_scales_energy(self):
        once = energy_vs_voltage_sweep(
            tiny_spec(), 64, 32, voltages=(1.35,), refetch_passes=1
        )[1.35]
        twice = energy_vs_voltage_sweep(
            tiny_spec(), 64, 32, voltages=(1.35,), refetch_passes=2
        )[1.35]
        assert twice == pytest.approx(2 * once, rel=0.1)


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(
            ["a", "long-header"], [[1, 2.5], ["xyz", 0.001]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_small_floats_use_scientific(self):
        text = format_table(["x"], [[1e-7]])
        assert "e-07" in text

    def test_percent_row(self):
        row = format_percent_row("saving", [0.0392, 0.4240])
        assert "3.92%" in row
        assert "42.40%" in row

"""Tests of bit-error injection into weight tensors."""

import numpy as np
import pytest

from repro.errors.injection import ErrorInjector
from repro.errors.models import ErrorModel3, make_error_model
from repro.snn.quantization import FixedPointRepresentation, Float32Representation


@pytest.fixture
def weights(rng):
    return rng.random((50, 40)).astype(np.float32)


class TestUniformInjection:
    def test_zero_ber_is_identity(self, weights):
        injector = ErrorInjector(Float32Representation(), seed=0)
        out, report = injector.inject_uniform(weights, 0.0)
        assert np.array_equal(out, weights)
        assert report.flipped_bits == 0
        assert report.achieved_ber == 0.0

    def test_achieved_ber_close_to_requested(self, weights):
        injector = ErrorInjector(Float32Representation(sanitize=False), seed=0)
        out, report = injector.inject_uniform(weights, 0.01)
        assert report.total_bits == weights.size * 32
        assert report.achieved_ber == pytest.approx(0.01, rel=0.5)

    def test_flip_count_matches_bit_difference(self, weights):
        injector = ErrorInjector(Float32Representation(sanitize=False), seed=1)
        out, report = injector.inject_uniform(weights, 0.005)
        diff = np.bitwise_xor(weights.view(np.uint32), out.view(np.uint32))
        assert int(np.unpackbits(diff.view(np.uint8)).sum()) == report.flipped_bits

    def test_input_untouched(self, weights):
        original = weights.copy()
        ErrorInjector(Float32Representation(), seed=0).inject_uniform(weights, 0.01)
        assert np.array_equal(weights, original)

    def test_shape_preserved(self, weights):
        out, _ = ErrorInjector(Float32Representation(), seed=0).inject_uniform(
            weights, 0.01
        )
        assert out.shape == weights.shape

    def test_deterministic_with_explicit_rng(self, weights):
        injector = ErrorInjector(Float32Representation(), seed=0)
        a, _ = injector.inject_uniform(weights, 0.01, rng=np.random.default_rng(9))
        b, _ = injector.inject_uniform(weights, 0.01, rng=np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_internal_stream_advances(self, weights):
        injector = ErrorInjector(Float32Representation(), seed=0)
        a, _ = injector.inject_uniform(weights, 0.01)
        b, _ = injector.inject_uniform(weights, 0.01)
        assert not np.array_equal(a, b)

    def test_sanitize_removes_nonfinite(self, weights):
        injector = ErrorInjector(Float32Representation(sanitize=True), seed=0)
        out, _ = injector.inject_uniform(weights, 0.05)
        assert np.all(np.isfinite(out))

    def test_clip_range_respected(self, weights):
        rep = Float32Representation(clip_range=(0.0, 1.0))
        out, _ = ErrorInjector(rep, seed=0).inject_uniform(weights, 0.05)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestFixedPointInjection:
    def test_int8_flip_bounded_damage(self, rng):
        weights = rng.random(1000).astype(np.float32)
        rep = FixedPointRepresentation(bits=8, w_min=0.0, w_max=1.0)
        injector = ErrorInjector(rep, seed=0)
        out, report = injector.inject_uniform(weights, 0.01)
        clean = rep.roundtrip(weights)
        # any single int8 bit flip moves a weight by at most the MSB step
        assert np.max(np.abs(out - clean)) <= rep.max_flip_error() * 2 + 1e-6
        assert report.total_bits == weights.size * 8


class TestRegionInjection:
    def test_region_rates_respected(self, rng):
        weights = rng.random(20_000).astype(np.float32)
        regions = (np.arange(weights.size) >= weights.size // 2).astype(np.int64)
        rates = np.array([0.0, 0.02])
        injector = ErrorInjector(Float32Representation(sanitize=False), seed=0)
        out, report = injector.inject_by_region(weights, regions, rates)
        first_half = slice(0, weights.size // 2)
        second_half = slice(weights.size // 2, None)
        assert np.array_equal(out.ravel()[first_half], weights[first_half])
        assert not np.array_equal(out.ravel()[second_half], weights[second_half])
        assert report.per_region_flips[0] == 0
        assert report.per_region_flips[1] > 0

    def test_region_index_validation(self, rng):
        weights = rng.random(10).astype(np.float32)
        injector = ErrorInjector(Float32Representation(), seed=0)
        with pytest.raises(IndexError):
            injector.inject_by_region(
                weights, np.full(10, 3, dtype=np.int64), np.array([0.1])
            )

    def test_region_shape_validation(self, rng):
        weights = rng.random(10).astype(np.float32)
        injector = ErrorInjector(Float32Representation(), seed=0)
        with pytest.raises(ValueError):
            injector.inject_by_region(
                weights, np.zeros(5, dtype=np.int64), np.array([0.1])
            )

    def test_rate_range_validation(self, rng):
        weights = rng.random(10).astype(np.float32)
        injector = ErrorInjector(Float32Representation(), seed=0)
        with pytest.raises(ValueError):
            injector.inject_by_region(
                weights, np.zeros(10, dtype=np.int64), np.array([1.5])
            )


class TestStructuredModels:
    def test_model3_uses_stored_values(self, rng):
        # Data-dependent model: all-zero words can only see 0->1 flips.
        weights = np.zeros(5000, dtype=np.float32)
        injector = ErrorInjector(
            Float32Representation(sanitize=False),
            model=ErrorModel3(one_to_zero_ratio=4.0),
            seed=0,
        )
        out, report = injector.inject_uniform(weights, 0.01)
        assert report.flipped_bits > 0
        assert np.any(out != 0.0)

    @pytest.mark.parametrize("name", ["model0", "model1", "model2", "model3"])
    def test_all_models_work_through_injector(self, name, rng):
        weights = rng.random(4096).astype(np.float32)
        injector = ErrorInjector(
            Float32Representation(),
            model=make_error_model(name),
            lane_bits=64,
            row_bits=8192,
            seed=0,
        )
        out, report = injector.inject_uniform(weights, 0.01)
        assert out.shape == weights.shape
        assert report.flipped_bits >= 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ErrorInjector(Float32Representation(), lane_bits=0)

"""Tests of the array-voltage dynamics model (Figs. 2d and 6)."""

import numpy as np
import pytest

from repro.dram.voltage import (
    ArrayVoltageModel,
    READY_TO_ACCESS_FRACTION,
    READY_TO_ACTIVATE_TOLERANCE,
    READY_TO_PRECHARGE_FRACTION,
)


@pytest.fixture
def model():
    return ArrayVoltageModel()


class TestTimeConstants:
    def test_nominal_tau_unchanged(self, model):
        assert model.tau_activate(1.35) == pytest.approx(model.tau_activate_ns)

    def test_tau_grows_at_reduced_voltage(self, model):
        assert model.tau_activate(1.025) > model.tau_activate(1.35)
        assert model.tau_precharge(1.025) > model.tau_precharge(1.35)

    def test_derating_factor_is_one_at_nominal(self, model):
        assert model.derating_factor(1.35) == pytest.approx(1.0)

    def test_derating_monotone_in_voltage(self, model):
        voltages = [1.025, 1.1, 1.175, 1.25, 1.325, 1.35]
        factors = [model.derating_factor(v) for v in voltages]
        assert all(a > b for a, b in zip(factors, factors[1:]))

    def test_invalid_supply_rejected(self, model):
        with pytest.raises(ValueError):
            model.tau_activate(0.0)
        with pytest.raises(ValueError):
            model.tau_activate(5.0)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            ArrayVoltageModel(v_nominal=0)
        with pytest.raises(ValueError):
            ArrayVoltageModel(tau_activate_ns=-1)


class TestWaveforms:
    def test_activate_starts_at_half_supply(self, model):
        v = model.varray_during_activate(np.array([0.0]), 1.35)
        assert v[0] == pytest.approx(1.35 / 2)

    def test_activate_approaches_supply(self, model):
        v = model.varray_during_activate(np.array([1e4]), 1.35)
        assert v[0] == pytest.approx(1.35, abs=1e-6)

    def test_activate_monotone_increasing(self, model):
        t = np.linspace(0, 80, 200)
        v = model.varray_during_activate(t, 1.1)
        assert np.all(np.diff(v) > 0)

    def test_precharge_decays_to_half_supply(self, model):
        v = model.varray_during_precharge(np.array([1e4]), 1.35, v_start=1.35)
        assert v[0] == pytest.approx(1.35 / 2, abs=1e-6)

    def test_lower_supply_gives_lower_curve(self, model):
        # The key observation of Fig. 2(d): the array voltage decreases
        # as the supply voltage decreases.
        t = np.linspace(0, 80, 100)
        high = model.varray_during_activate(t, 1.35)
        low = model.varray_during_activate(t, 1.025)
        assert np.all(low < high)


class TestThresholdCrossings:
    @pytest.mark.parametrize("v", [1.025, 1.1, 1.175, 1.25, 1.325, 1.35])
    def test_ready_to_access_crossing_is_exact(self, model, v):
        t = model.ready_to_access_time(v)
        varray = model.varray_during_activate(np.array([t]), v)[0]
        assert varray == pytest.approx(READY_TO_ACCESS_FRACTION * v, rel=1e-9)

    @pytest.mark.parametrize("v", [1.025, 1.35])
    def test_ready_to_precharge_crossing_is_exact(self, model, v):
        t = model.ready_to_precharge_time(v)
        varray = model.varray_during_activate(np.array([t]), v)[0]
        assert varray == pytest.approx(READY_TO_PRECHARGE_FRACTION * v, rel=1e-9)

    @pytest.mark.parametrize("v", [1.025, 1.35])
    def test_ready_to_activate_crossing_is_exact(self, model, v):
        t = model.ready_to_activate_time(v)
        varray = model.varray_during_precharge(np.array([t]), v, v_start=v)[0]
        assert abs(varray - v / 2) == pytest.approx(
            READY_TO_ACTIVATE_TOLERANCE * v, rel=1e-9
        )

    def test_crossings_ordered(self, model):
        # tRCD < tRAS always (75% is crossed before 98%).
        for v in (1.025, 1.35):
            assert model.ready_to_access_time(v) < model.ready_to_precharge_time(v)

    def test_timings_grow_at_reduced_voltage(self, model):
        # Fig. 6: reliable tRCD/tRAS/tRP are longer at lower voltage.
        assert model.ready_to_access_time(1.1) > model.ready_to_access_time(1.35)
        assert model.ready_to_precharge_time(1.1) > model.ready_to_precharge_time(1.35)
        assert model.ready_to_activate_time(1.1) > model.ready_to_activate_time(1.35)


class TestTransient:
    def test_transient_covers_activate_then_precharge(self, model):
        tr = model.transient(1.35, total_time_ns=80.0, samples=401)
        assert tr.time_ns.shape == tr.varray_volts.shape == (401,)
        # rises from Vs/2 toward Vs, then decays back toward Vs/2
        peak_index = int(np.argmax(tr.varray_volts))
        assert tr.varray_volts[peak_index] > 0.95 * 1.35
        assert tr.varray_volts[-1] < tr.varray_volts[peak_index]

    def test_transient_family_matches_voltages(self, model):
        voltages = [1.35, 1.25, 1.15]
        family = model.transient_family(voltages)
        assert [tr.v_supply for tr in family] == voltages

    def test_transient_validation(self, model):
        with pytest.raises(ValueError):
            model.transient(1.35, total_time_ns=0)
        with pytest.raises(ValueError):
            model.transient(1.35, precharge_at_ns=-5.0, activate_at_ns=0.0)

    def test_explicit_precharge_time_respected(self, model):
        tr = model.transient(1.35, precharge_at_ns=30.0)
        assert tr.t_precharge_start_ns == pytest.approx(30.0)

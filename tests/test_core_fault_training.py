"""Tests of fault-aware training (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.fault_aware_training import (
    default_ber_schedule,
    improve_error_tolerance,
    train_baseline,
)
from repro.errors.injection import ErrorInjector
from repro.snn.network import NetworkParameters
from repro.snn.quantization import Float32Representation


class TestSchedule:
    def test_default_schedule_spans_paper_range(self):
        rates = default_ber_schedule()
        assert rates[0] == pytest.approx(1e-9)
        assert rates[-1] == pytest.approx(1e-3)

    def test_geometric_progression(self):
        rates = default_ber_schedule(1e-8, 1e-4, factor=100.0)
        assert len(rates) == 3
        assert rates[1] / rates[0] == pytest.approx(100.0)

    def test_ragged_maximum_included_once(self):
        rates = default_ber_schedule(1e-6, 5e-4, factor=10.0)
        assert rates[-1] == pytest.approx(5e-4)
        assert len(rates) == len(set(rates))

    def test_validation(self):
        with pytest.raises(ValueError):
            default_ber_schedule(1e-3, 1e-6)
        with pytest.raises(ValueError):
            default_ber_schedule(1e-6, 1e-3, factor=1.0)


@pytest.fixture(scope="module")
def small_baseline():
    """One baseline model shared by the fault-aware tests (trains once)."""
    from repro.datasets import load_dataset

    dataset = load_dataset("mnist", 60, 40, seed=7)
    rng = np.random.default_rng(11)
    model = train_baseline(dataset, n_neurons=25, epochs=1, n_steps=50, rng=rng)
    return dataset, model


class TestTrainBaseline:
    def test_baseline_learns(self, small_baseline):
        _dataset, model = small_baseline
        assert model.accuracy > 0.25
        assert model.weights.shape == (784, 25)

    def test_accuracy_is_test_split_accuracy(self, small_baseline):
        _, model = small_baseline
        assert 0.0 <= model.accuracy <= 1.0


class TestImproveErrorTolerance:
    def test_progressive_training_records_every_stage(self, small_baseline):
        dataset, baseline = small_baseline
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=3)
        result = improve_error_tolerance(
            baseline,
            dataset,
            injector,
            rates=(1e-5, 1e-3),
            epochs_per_rate=1,
            n_steps=50,
            rng=np.random.default_rng(5),
        )
        assert result.rates == (1e-5, 1e-3)
        assert set(result.accuracy_per_rate) == {1e-5, 1e-3}
        assert result.model.metadata["fault_aware"] is True

    def test_selected_stage_is_highest_passing_or_best(self, small_baseline):
        dataset, baseline = small_baseline
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=3)
        result = improve_error_tolerance(
            baseline,
            dataset,
            injector,
            rates=(1e-5, 1e-3),
            epochs_per_rate=1,
            n_steps=50,
            accuracy_bound=0.10,
            rng=np.random.default_rng(5),
        )
        target = baseline.accuracy - 0.10
        # the untouched baseline is always a candidate at rate 0.0
        candidate_accuracy = {0.0: baseline.accuracy}
        candidate_accuracy.update(result.accuracy_per_rate)
        passing = [
            r for r in (0.0,) + result.rates if candidate_accuracy[r] >= target
        ]
        assert result.selected_rate == passing[-1]
        assert result.model.accuracy == candidate_accuracy[result.selected_rate]

    def test_rates_sorted_ascending(self, small_baseline):
        dataset, baseline = small_baseline
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=3)
        result = improve_error_tolerance(
            baseline,
            dataset,
            injector,
            rates=(1e-3, 1e-5),  # unordered on purpose
            epochs_per_rate=1,
            n_steps=40,
            rng=np.random.default_rng(5),
        )
        assert result.rates == (1e-5, 1e-3)

    def test_weights_stay_in_range(self, small_baseline):
        dataset, baseline = small_baseline
        injector = ErrorInjector(Float32Representation(clip_range=(0, 1)), seed=3)
        result = improve_error_tolerance(
            baseline,
            dataset,
            injector,
            rates=(1e-3,),
            epochs_per_rate=1,
            n_steps=40,
            rng=np.random.default_rng(5),
        )
        assert np.all(result.model.weights >= 0.0)
        assert np.all(result.model.weights <= 1.0)
        assert np.all(np.isfinite(result.model.weights))

    def test_validation(self, small_baseline):
        dataset, baseline = small_baseline
        injector = ErrorInjector(Float32Representation(), seed=3)
        with pytest.raises(ValueError):
            improve_error_tolerance(baseline, dataset, injector, rates=())
        with pytest.raises(ValueError):
            improve_error_tolerance(baseline, dataset, injector, rates=(2.0,))
